//===- sexpr/ExprNormalize.h - Normalization & the equality judgment ------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decision procedure for the paper's semantic equality judgment
/// Δ ⊢ E1 = E2 ("equal objects in the standard model", Appendix A.2).
/// Full first-order equality over arithmetic + arrays is undecidable, so we
/// implement a sound, incomplete procedure via normalization:
///
///   - integer expressions are put into a linear-combination normal form
///     c0 + c1*P1 + ... + cn*Pn over canonically ordered product atoms,
///     with all coefficient arithmetic wrapping (machine integers wrap);
///   - sel-over-upd chains are resolved when the addresses are provably
///     equal or provably distinct;
///   - upd chains drop entries shadowed by a provably equal outer address
///     and order commuting (provably distinct) adjacent entries
///     canonically.
///
/// Two expressions are *provably equal* when their normal forms coincide,
/// or (for integers) when the normal form of their difference is the
/// constant 0. They are *provably distinct* when the difference normalizes
/// to a nonzero constant. Anything else is "unknown", which the type
/// checker conservatively treats as not-equal. The procedure is complete
/// on the expressions produced by the Wile compiler (linear arithmetic over
/// variables and constant-addressed arrays), which is what the paper's
/// "standard theory used in many classical Hoare Logics" needs to cover.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SEXPR_EXPRNORMALIZE_H
#define TALFT_SEXPR_EXPRNORMALIZE_H

#include "sexpr/ExprContext.h"

namespace talft {

/// Returns the normal form of \p E (memoized in \p Ctx). Normal forms are
/// canonical: semantically equal expressions *recognized by the procedure*
/// normalize to the same node.
const Expr *normalize(ExprContext &Ctx, const Expr *E);

/// Three-valued comparison result.
enum class Proof { Yes, No, Unknown };

/// Decides Δ ⊢ E1 = E2: Yes when provably equal in the standard model,
/// No when provably distinct, Unknown otherwise. (The variable context is
/// implicit: free variables are universally quantified.)
Proof compareEqual(ExprContext &Ctx, const Expr *A, const Expr *B);

/// Convenience: compareEqual == Yes.
bool provablyEqual(ExprContext &Ctx, const Expr *A, const Expr *B);

/// Convenience: compareEqual == No.
bool provablyDistinct(ExprContext &Ctx, const Expr *A, const Expr *B);

} // namespace talft

#endif // TALFT_SEXPR_EXPRNORMALIZE_H
