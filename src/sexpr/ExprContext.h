//===- sexpr/ExprContext.h - Hash-consing arena for static expressions ----===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExprContext owns and uniques Expr nodes: structurally equal expressions
/// built through the same context are the same pointer. The context also
/// memoizes normalization (see ExprNormalize.h). One context is shared by a
/// whole type-checking or verification session.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SEXPR_EXPRCONTEXT_H
#define TALFT_SEXPR_EXPRCONTEXT_H

#include "sexpr/Expr.h"

#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace talft {

/// Uniquing arena and factory for static expressions.
class ExprContext {
public:
  ExprContext();
  ExprContext(const ExprContext &) = delete;
  ExprContext &operator=(const ExprContext &) = delete;

  /// The integer constant n.
  const Expr *intConst(int64_t N);
  /// The variable \p Name of kind \p K. A name denotes one variable: asking
  /// for the same name with a different kind is a programming error.
  const Expr *var(std::string_view Name, ExprKind K);
  /// E1 op E2 (op ∈ {add, sub, mul}); both operands of kind int.
  const Expr *binop(Opcode Op, const Expr *L, const Expr *R);
  /// sel Em En.
  const Expr *sel(const Expr *Mem, const Expr *Addr);
  /// The empty memory emp.
  const Expr *emp() const { return EmpNode; }
  /// upd Em En1 En2.
  const Expr *upd(const Expr *Mem, const Expr *Addr, const Expr *Val);

  /// Number of distinct nodes created (for tests and benchmarks).
  size_t numNodes() const { return Nodes.size(); }

  /// Internal: the normalization memo table (see ExprNormalize.cpp).
  std::unordered_map<const Expr *, const Expr *> &normalizeMemo() {
    return NormalizeMemoTable;
  }

private:
  const Expr *unique(Expr Proto);

  std::vector<std::unique_ptr<Expr>> Nodes;
  std::unordered_map<std::string, const Expr *> UniqueTable;
  std::unordered_map<const Expr *, const Expr *> NormalizeMemoTable;
  const Expr *EmpNode = nullptr;
};

} // namespace talft

#endif // TALFT_SEXPR_EXPRCONTEXT_H
