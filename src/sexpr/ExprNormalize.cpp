//===- sexpr/ExprNormalize.cpp --------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "sexpr/ExprNormalize.h"

#include "support/Unreachable.h"

#include <algorithm>
#include <vector>

using namespace talft;

namespace {

/// Wrapping 64-bit arithmetic (two's complement machine integers).
int64_t wrapAdd(int64_t A, int64_t B) {
  return (int64_t)((uint64_t)A + (uint64_t)B);
}
int64_t wrapMul(int64_t A, int64_t B) {
  return (int64_t)((uint64_t)A * (uint64_t)B);
}
int64_t wrapNeg(int64_t A) { return (int64_t)(0 - (uint64_t)A); }

/// A term of the linear normal form: Coeff * (product of Atoms). Atoms are
/// normalized non-sum, non-constant integer expressions (variables, sels,
/// opaque products left unexpanded), kept sorted by compareExprs.
struct LinearTerm {
  int64_t Coeff = 0;
  std::vector<const Expr *> Atoms;
};

/// A linear combination: Constant + sum of terms.
struct LinearForm {
  int64_t Constant = 0;
  std::vector<LinearTerm> Terms;
};

int compareAtomLists(const std::vector<const Expr *> &A,
                     const std::vector<const Expr *> &B) {
  size_t N = std::min(A.size(), B.size());
  for (size_t I = 0; I != N; ++I)
    if (int C = compareExprs(A[I], B[I]))
      return C;
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  return 0;
}

class Normalizer {
public:
  explicit Normalizer(ExprContext &Ctx) : Ctx(Ctx) {}

  const Expr *run(const Expr *E) {
    auto &Memo = Ctx.normalizeMemo();
    auto It = Memo.find(E);
    if (It != Memo.end())
      return It->second;
    const Expr *Result =
        E->kind() == ExprKind::Int ? emit(linearize(E)) : normMem(E);
    Memo.emplace(E, Result);
    // The normal form of a normal form is itself.
    Memo.emplace(Result, Result);
    return Result;
  }

private:
  ExprContext &Ctx;

  /// Converts an integer expression to its linear form, normalizing
  /// sub-expressions under sel/upd on the way.
  LinearForm linearize(const Expr *E) {
    LinearForm F;
    accumulate(E, /*Sign=*/1, F);
    canonicalize(F);
    return F;
  }

  /// Adds Sign * E into \p F.
  void accumulate(const Expr *E, int64_t Sign, LinearForm &F) {
    switch (E->nodeKind()) {
    case ExprNodeKind::IntConst:
      F.Constant = wrapAdd(F.Constant, wrapMul(Sign, E->intValue()));
      return;
    case ExprNodeKind::BinOp:
      switch (E->binOp()) {
      case Opcode::Add:
        accumulate(E->child0(), Sign, F);
        accumulate(E->child1(), Sign, F);
        return;
      case Opcode::Sub:
        accumulate(E->child0(), Sign, F);
        accumulate(E->child1(), wrapNeg(Sign), F);
        return;
      case Opcode::Mul: {
        LinearTerm T = multiply(E);
        T.Coeff = wrapMul(T.Coeff, Sign);
        pushTerm(std::move(T), F);
        return;
      }
      default:
        talft_unreachable("non-ALU opcode in a static expression");
      }
    case ExprNodeKind::Var:
    case ExprNodeKind::Sel: {
      LinearTerm T;
      T.Coeff = Sign;
      T.Atoms.push_back(normAtom(E));
      pushTerm(std::move(T), F);
      return;
    }
    case ExprNodeKind::Emp:
    case ExprNodeKind::Upd:
      break;
    }
    talft_unreachable("memory node in integer linearization");
  }

  /// Normalizes a product node into coefficient * sorted atoms. Sums inside
  /// products are distributed only when one side is a constant; otherwise
  /// the (normalized) sum is kept as an opaque atom — sound, and it keeps
  /// normal forms small.
  LinearTerm multiply(const Expr *E) {
    LinearTerm T;
    T.Coeff = 1;
    mulInto(E, T);
    std::sort(T.Atoms.begin(), T.Atoms.end(),
              [](const Expr *A, const Expr *B) {
                return compareExprs(A, B) < 0;
              });
    return T;
  }

  void mulInto(const Expr *E, LinearTerm &T) {
    if (E->isIntConst()) {
      T.Coeff = wrapMul(T.Coeff, E->intValue());
      return;
    }
    if (E->isBinOp() && E->binOp() == Opcode::Mul) {
      mulInto(E->child0(), T);
      mulInto(E->child1(), T);
      return;
    }
    // Non-constant factor: normalize it. If it normalizes to a constant or
    // another product, fold that in; a sum becomes an opaque atom unless it
    // is constant-plus-nothing.
    const Expr *N = run(E);
    if (N->isIntConst()) {
      T.Coeff = wrapMul(T.Coeff, N->intValue());
      return;
    }
    if (N->isBinOp() && N->binOp() == Opcode::Mul) {
      mulInto(N->child0(), T);
      mulInto(N->child1(), T);
      return;
    }
    T.Atoms.push_back(N);
  }

  /// Normalizes an atom (variable or sel).
  const Expr *normAtom(const Expr *E) {
    if (E->isVar())
      return E;
    assert(E->isSel() && "atoms are variables or sels");
    return normSel(run(E->child0()), emit(linearize(E->child1())));
  }

  void pushTerm(LinearTerm T, LinearForm &F) {
    if (T.Coeff == 0)
      return;
    if (T.Atoms.empty()) {
      F.Constant = wrapAdd(F.Constant, T.Coeff);
      return;
    }
    F.Terms.push_back(std::move(T));
  }

  /// Sorts terms and merges equal atom-lists (coefficients add, wrapping).
  void canonicalize(LinearForm &F) {
    std::sort(F.Terms.begin(), F.Terms.end(),
              [](const LinearTerm &A, const LinearTerm &B) {
                return compareAtomLists(A.Atoms, B.Atoms) < 0;
              });
    std::vector<LinearTerm> Merged;
    for (LinearTerm &T : F.Terms) {
      if (!Merged.empty() &&
          compareAtomLists(Merged.back().Atoms, T.Atoms) == 0) {
        Merged.back().Coeff = wrapAdd(Merged.back().Coeff, T.Coeff);
        if (Merged.back().Coeff == 0)
          Merged.pop_back();
        continue;
      }
      Merged.push_back(std::move(T));
    }
    F.Terms = std::move(Merged);
  }

  /// Rebuilds the canonical expression tree for a linear form.
  const Expr *emit(const LinearForm &F) {
    const Expr *Acc = nullptr;
    for (const LinearTerm &T : F.Terms) {
      const Expr *Prod = nullptr;
      for (const Expr *A : T.Atoms)
        Prod = Prod ? Ctx.binop(Opcode::Mul, Prod, A) : A;
      assert(Prod && "term with no atoms");
      if (T.Coeff != 1)
        Prod = Ctx.binop(Opcode::Mul, Ctx.intConst(T.Coeff), Prod);
      Acc = Acc ? Ctx.binop(Opcode::Add, Acc, Prod) : Prod;
    }
    if (!Acc)
      return Ctx.intConst(F.Constant);
    if (F.Constant != 0)
      Acc = Ctx.binop(Opcode::Add, Acc, Ctx.intConst(F.Constant));
    return Acc;
  }

  /// Resolves sel over an upd chain with normalized operands.
  const Expr *normSel(const Expr *Mem, const Expr *Addr) {
    const Expr *M = Mem;
    while (M->isUpd()) {
      Proof Same = addrCompare(M->child1(), Addr);
      if (Same == Proof::Yes)
        return M->child2();
      if (Same == Proof::No) {
        M = M->child0();
        continue;
      }
      break;
    }
    return Ctx.sel(M, Addr);
  }

  /// Equality of two *normalized* integer expressions: identical nodes are
  /// equal; otherwise decide by the normal form of their difference.
  Proof addrCompare(const Expr *A, const Expr *B) {
    if (A == B)
      return Proof::Yes;
    const Expr *Diff = run(Ctx.binop(Opcode::Sub, A, B));
    if (Diff->isIntConst())
      return Diff->intValue() == 0 ? Proof::Yes : Proof::No;
    return Proof::Unknown;
  }

  /// Normalizes a memory expression: normalize components, drop shadowed
  /// updates, and canonically order commuting adjacent updates.
  const Expr *normMem(const Expr *E) {
    if (E->isEmp() || E->isVar())
      return E;
    assert(E->isUpd() && "unknown memory node");

    // Collect the chain outermost-first down to the base.
    struct Entry {
      const Expr *Addr;
      const Expr *Val;
    };
    std::vector<Entry> Chain;
    const Expr *Base = E;
    while (Base->isUpd()) {
      Chain.push_back({emit(linearize(Base->child1())),
                       emit(linearize(Base->child2()))});
      Base = Base->child0();
    }
    Base = normMem(Base);

    // Drop entries shadowed by a provably equal outer (earlier) address.
    std::vector<Entry> Kept;
    for (size_t I = 0, N = Chain.size(); I != N; ++I) {
      bool Shadowed = false;
      for (size_t J = 0; J != I && !Shadowed; ++J)
        Shadowed = addrCompare(Chain[J].Addr, Chain[I].Addr) == Proof::Yes;
      if (!Shadowed)
        Kept.push_back(Chain[I]);
    }

    // Reverse to application (innermost-first) order, then bubble provably
    // distinct adjacent entries into canonical address order. Chains are
    // short; O(n^2) is fine.
    std::reverse(Kept.begin(), Kept.end());
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t I = 0; I + 1 < Kept.size(); ++I) {
        if (compareExprs(Kept[I].Addr, Kept[I + 1].Addr) > 0 &&
            addrCompare(Kept[I].Addr, Kept[I + 1].Addr) == Proof::No) {
          std::swap(Kept[I], Kept[I + 1]);
          Changed = true;
        }
      }
    }

    const Expr *M = Base;
    for (const Entry &En : Kept)
      M = Ctx.upd(M, En.Addr, En.Val);
    return M;
  }
};

} // namespace

const Expr *talft::normalize(ExprContext &Ctx, const Expr *E) {
  return Normalizer(Ctx).run(E);
}

Proof talft::compareEqual(ExprContext &Ctx, const Expr *A, const Expr *B) {
  assert(A->kind() == B->kind() && "comparing expressions of unequal kind");
  const Expr *NA = normalize(Ctx, A);
  const Expr *NB = normalize(Ctx, B);
  if (NA == NB)
    return Proof::Yes;
  if (A->kind() == ExprKind::Mem) {
    // Distinctness of memories is not decided (it is never needed by the
    // checker); unequal normal forms are merely "unknown".
    return Proof::Unknown;
  }
  const Expr *Diff = normalize(Ctx, Ctx.binop(Opcode::Sub, NA, NB));
  if (Diff->isIntConst())
    return Diff->intValue() == 0 ? Proof::Yes : Proof::No;
  return Proof::Unknown;
}

bool talft::provablyEqual(ExprContext &Ctx, const Expr *A, const Expr *B) {
  return compareEqual(Ctx, A, B) == Proof::Yes;
}

bool talft::provablyDistinct(ExprContext &Ctx, const Expr *A, const Expr *B) {
  return compareEqual(Ctx, A, B) == Proof::No;
}
