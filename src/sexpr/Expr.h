//===- sexpr/Expr.h - Static expressions (Figure 5, Appendix A.2) ---------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Hoare-logic half of the TALFT type system reasons about run-time
/// values with *static expressions* drawn from the classical theory of
/// arithmetic and arrays:
///
///   kinds        κ ::= κint | κmem
///   expressions  E ::= x | n | E op E | sel Em En | emp | upd Em En1 En2
///
/// Integer expressions denote machine integers; memory expressions denote
/// finite maps from addresses to integers. `sel Em En` is the value at
/// address En in Em; `upd Em En1 En2` is Em with address En1 updated to
/// En2; `emp` is the empty memory.
///
/// Expr nodes are immutable and hash-consed by an ExprContext, so pointer
/// equality coincides with structural equality and contexts can memoize
/// normalization. All Expr pointers are owned by their context.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SEXPR_EXPR_H
#define TALFT_SEXPR_EXPR_H

#include "isa/Inst.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace talft {

/// Expression kinds κ.
enum class ExprKind : uint8_t { Int, Mem };

/// Expression node discriminator.
enum class ExprNodeKind : uint8_t { Var, IntConst, BinOp, Sel, Emp, Upd };

class ExprContext;

/// One immutable, hash-consed static-expression node.
class Expr {
public:
  ExprNodeKind nodeKind() const { return NK; }
  ExprKind kind() const { return K; }

  bool isVar() const { return NK == ExprNodeKind::Var; }
  bool isIntConst() const { return NK == ExprNodeKind::IntConst; }
  bool isBinOp() const { return NK == ExprNodeKind::BinOp; }
  bool isSel() const { return NK == ExprNodeKind::Sel; }
  bool isEmp() const { return NK == ExprNodeKind::Emp; }
  bool isUpd() const { return NK == ExprNodeKind::Upd; }

  /// Variable name. Requires isVar().
  const std::string &varName() const {
    assert(isVar() && "varName() on a non-variable");
    return Name;
  }

  /// Constant payload. Requires isIntConst().
  int64_t intValue() const {
    assert(isIntConst() && "intValue() on a non-constant");
    return IntVal;
  }

  /// The arithmetic operator. Requires isBinOp().
  Opcode binOp() const {
    assert(isBinOp() && "binOp() on a non-binop");
    return Op;
  }

  /// Left operand of a binop; memory operand of sel/upd.
  const Expr *child0() const {
    assert((isBinOp() || isSel() || isUpd()) && "node has no children");
    return C0;
  }
  /// Right operand of a binop; address operand of sel/upd.
  const Expr *child1() const {
    assert((isBinOp() || isSel() || isUpd()) && "node has no children");
    return C1;
  }
  /// Stored-value operand of upd.
  const Expr *child2() const {
    assert(isUpd() && "child2() only on upd nodes");
    return C2;
  }

  /// True when the expression has no free variables.
  bool isClosed() const { return Closed; }

  /// True when some free variable of this expression satisfies... see
  /// ExprContext::freeVars for full enumeration; this is a cheap check.
  bool hasFreeVars() const { return !Closed; }

  /// Renders in the paper's concrete syntax, e.g. "sel (upd m 4 x) 4".
  std::string str() const;

private:
  friend class ExprContext;
  Expr() = default;

  ExprNodeKind NK = ExprNodeKind::IntConst;
  ExprKind K = ExprKind::Int;
  bool Closed = true;
  Opcode Op = Opcode::Add;     // BinOp only.
  int64_t IntVal = 0;          // IntConst only.
  std::string Name;            // Var only.
  const Expr *C0 = nullptr;    // BinOp lhs / Sel mem / Upd mem.
  const Expr *C1 = nullptr;    // BinOp rhs / Sel addr / Upd addr.
  const Expr *C2 = nullptr;    // Upd value.
};

/// Total structural order on expressions (used to canonicalize commutative
/// operand lists deterministically). Returns <0, 0, >0.
int compareExprs(const Expr *A, const Expr *B);

} // namespace talft

#endif // TALFT_SEXPR_EXPR_H
