//===- sexpr/ExprOps.cpp --------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "sexpr/ExprOps.h"

#include "support/Unreachable.h"

#include <unordered_map>
#include <unordered_set>

using namespace talft;

std::string VarScope::str() const {
  std::string Out;
  for (const auto &[Name, K] : Vars) {
    if (!Out.empty())
      Out += ", ";
    Out += Name;
    Out += K == ExprKind::Int ? ":int" : ":mem";
  }
  return Out;
}

static void collectFreeVars(const Expr *E,
                            std::unordered_set<const Expr *> &Seen,
                            std::vector<const Expr *> &Out) {
  // Seen covers every visited node (expressions are DAGs under
  // hash-consing; revisiting shared subtrees would be exponential).
  if (E->isClosed() || !Seen.insert(E).second)
    return;
  switch (E->nodeKind()) {
  case ExprNodeKind::Var:
    Out.push_back(E);
    return;
  case ExprNodeKind::IntConst:
  case ExprNodeKind::Emp:
    return;
  case ExprNodeKind::BinOp:
  case ExprNodeKind::Sel:
    collectFreeVars(E->child0(), Seen, Out);
    collectFreeVars(E->child1(), Seen, Out);
    return;
  case ExprNodeKind::Upd:
    collectFreeVars(E->child0(), Seen, Out);
    collectFreeVars(E->child1(), Seen, Out);
    collectFreeVars(E->child2(), Seen, Out);
    return;
  }
  talft_unreachable("unknown expression node kind");
}

std::vector<const Expr *> talft::freeVars(const Expr *E) {
  std::unordered_set<const Expr *> Seen;
  std::vector<const Expr *> Out;
  collectFreeVars(E, Seen, Out);
  return Out;
}

bool talft::wellFormedIn(const Expr *E, const VarScope &Delta) {
  for (const Expr *V : freeVars(E)) {
    std::optional<ExprKind> K = Delta.lookup(V->varName());
    if (!K || *K != V->kind())
      return false;
  }
  return true;
}

namespace {

/// Hash-consing makes expressions DAGs: shared subtrees must be visited
/// once per top-level call or substitution over self-referencing chains
/// (e.g. a loop's acc = acc*acc + 1 singleton) goes exponential.
const Expr *applyMemo(ExprContext &Ctx, const Subst &S, const Expr *E,
                      std::unordered_map<const Expr *, const Expr *> &Memo) {
  if (E->isClosed())
    return E;
  auto It = Memo.find(E);
  if (It != Memo.end())
    return It->second;
  const Expr *Result = nullptr;
  switch (E->nodeKind()) {
  case ExprNodeKind::Var: {
    const Expr *Bound = S.lookup(E);
    Result = Bound ? Bound : E;
    break;
  }
  case ExprNodeKind::IntConst:
  case ExprNodeKind::Emp:
    Result = E;
    break;
  case ExprNodeKind::BinOp:
    Result = Ctx.binop(E->binOp(), applyMemo(Ctx, S, E->child0(), Memo),
                       applyMemo(Ctx, S, E->child1(), Memo));
    break;
  case ExprNodeKind::Sel:
    Result = Ctx.sel(applyMemo(Ctx, S, E->child0(), Memo),
                     applyMemo(Ctx, S, E->child1(), Memo));
    break;
  case ExprNodeKind::Upd:
    Result = Ctx.upd(applyMemo(Ctx, S, E->child0(), Memo),
                     applyMemo(Ctx, S, E->child1(), Memo),
                     applyMemo(Ctx, S, E->child2(), Memo));
    break;
  }
  Memo.emplace(E, Result);
  return Result;
}

} // namespace

const Expr *Subst::apply(ExprContext &Ctx, const Expr *E) const {
  if (E->isClosed() || empty())
    return E;
  std::unordered_map<const Expr *, const Expr *> Memo;
  return applyMemo(Ctx, *this, E, Memo);
}

Subst Subst::composeWith(ExprContext &Ctx, const Subst &Outer) const {
  Subst Result;
  for (const auto &[Var, E] : Map)
    Result.bind(Var, Outer.apply(Ctx, E));
  return Result;
}

std::string Subst::str() const {
  std::string Out = "[";
  bool First = true;
  for (const auto &[Var, E] : Map) {
    if (!First)
      Out += ", ";
    First = false;
    Out += E->str();
    Out += "/";
    Out += Var->varName();
  }
  Out += "]";
  return Out;
}

namespace {

/// Memoized evaluation over the expression DAG (see applyMemo for why:
/// shared subtrees would otherwise be re-evaluated exponentially often).
struct Evaluator {
  std::unordered_map<const Expr *, std::optional<int64_t>> IntMemo;
  std::unordered_map<const Expr *, std::optional<MemDenotation>> MemMemo;

  std::optional<int64_t> evalI(const Expr *E) {
    auto It = IntMemo.find(E);
    if (It != IntMemo.end())
      return It->second;
    std::optional<int64_t> Result = evalIUncached(E);
    IntMemo.emplace(E, Result);
    return Result;
  }

  std::optional<int64_t> evalIUncached(const Expr *E) {
    switch (E->nodeKind()) {
    case ExprNodeKind::IntConst:
      return E->intValue();
    case ExprNodeKind::BinOp: {
      std::optional<int64_t> L = evalI(E->child0());
      std::optional<int64_t> R = evalI(E->child1());
      if (!L || !R)
        return std::nullopt;
      return evalAluOp(E->binOp(), *L, *R);
    }
    case ExprNodeKind::Sel: {
      const std::optional<MemDenotation> &M = evalM(E->child0());
      std::optional<int64_t> A = evalI(E->child1());
      if (!M || !A)
        return std::nullopt;
      auto It = M->find(*A);
      if (It == M->end())
        return std::nullopt;
      return It->second;
    }
    case ExprNodeKind::Var:
    case ExprNodeKind::Emp:
    case ExprNodeKind::Upd:
      break;
    }
    talft_unreachable("non-integer node in evalInt");
  }

  const std::optional<MemDenotation> &evalM(const Expr *E) {
    auto It = MemMemo.find(E);
    if (It != MemMemo.end())
      return It->second;
    std::optional<MemDenotation> Result = evalMUncached(E);
    return MemMemo.emplace(E, std::move(Result)).first->second;
  }

  std::optional<MemDenotation> evalMUncached(const Expr *E) {
    switch (E->nodeKind()) {
    case ExprNodeKind::Emp:
      return MemDenotation();
    case ExprNodeKind::Upd: {
      std::optional<MemDenotation> M = evalM(E->child0()); // copy
      std::optional<int64_t> A = evalI(E->child1());
      std::optional<int64_t> V = evalI(E->child2());
      if (!M || !A || !V)
        return std::nullopt;
      (*M)[*A] = *V;
      return M;
    }
    case ExprNodeKind::Var:
    case ExprNodeKind::IntConst:
    case ExprNodeKind::BinOp:
    case ExprNodeKind::Sel:
      break;
    }
    talft_unreachable("non-memory node in evalMem");
  }
};

} // namespace

std::optional<int64_t> talft::evalInt(const Expr *E) {
  assert(E->kind() == ExprKind::Int && "evalInt on a memory expression");
  assert(E->isClosed() && "evalInt on an open expression");
  Evaluator Ev;
  return Ev.evalI(E);
}

std::optional<MemDenotation> talft::evalMem(const Expr *E) {
  assert(E->kind() == ExprKind::Mem && "evalMem on an integer expression");
  assert(E->isClosed() && "evalMem on an open expression");
  Evaluator Ev;
  return Ev.evalM(E);
}
