//===- sexpr/ExprContext.cpp ----------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "sexpr/ExprContext.h"

#include "support/Unreachable.h"

#include <cstdio>

using namespace talft;

// Children are already uniqued, so a serialized key containing the child
// pointers identifies a node structurally.
static std::string pointerKey(const Expr *E) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%p", (const void *)E);
  return Buf;
}

ExprContext::ExprContext() {
  Expr Proto;
  Proto.NK = ExprNodeKind::Emp;
  Proto.K = ExprKind::Mem;
  EmpNode = unique(std::move(Proto));
}

const Expr *ExprContext::unique(Expr Proto) {
  std::string Key;
  switch (Proto.NK) {
  case ExprNodeKind::IntConst:
    Key = "C:" + std::to_string(Proto.IntVal);
    break;
  case ExprNodeKind::Var:
    Key = "V:";
    Key += Proto.K == ExprKind::Int ? "i:" : "m:";
    Key += Proto.Name;
    break;
  case ExprNodeKind::BinOp:
    Key = "B:";
    Key += opcodeStem(Proto.Op);
    Key += ":" + pointerKey(Proto.C0) + ":" + pointerKey(Proto.C1);
    break;
  case ExprNodeKind::Sel:
    Key = "S:" + pointerKey(Proto.C0) + ":" + pointerKey(Proto.C1);
    break;
  case ExprNodeKind::Emp:
    Key = "E";
    break;
  case ExprNodeKind::Upd:
    Key = "U:" + pointerKey(Proto.C0) + ":" + pointerKey(Proto.C1) + ":" +
          pointerKey(Proto.C2);
    break;
  }

  auto It = UniqueTable.find(Key);
  if (It != UniqueTable.end())
    return It->second;

  auto Node = std::make_unique<Expr>(std::move(Proto));
  const Expr *Result = Node.get();
  Nodes.push_back(std::move(Node));
  UniqueTable.emplace(std::move(Key), Result);
  return Result;
}

const Expr *ExprContext::intConst(int64_t N) {
  Expr Proto;
  Proto.NK = ExprNodeKind::IntConst;
  Proto.K = ExprKind::Int;
  Proto.IntVal = N;
  return unique(std::move(Proto));
}

const Expr *ExprContext::var(std::string_view Name, ExprKind K) {
  assert(!Name.empty() && "variables need a name");
  Expr Proto;
  Proto.NK = ExprNodeKind::Var;
  Proto.K = K;
  Proto.Closed = false;
  Proto.Name = std::string(Name);
  const Expr *Result = unique(std::move(Proto));
  assert(Result->kind() == K && "one variable name used at two kinds");
  return Result;
}

const Expr *ExprContext::binop(Opcode Op, const Expr *L, const Expr *R) {
  assert(isAluOpcode(Op) && "static binops are add/sub/mul");
  assert(L->kind() == ExprKind::Int && R->kind() == ExprKind::Int &&
         "binop operands must have kind int");
  Expr Proto;
  Proto.NK = ExprNodeKind::BinOp;
  Proto.K = ExprKind::Int;
  Proto.Closed = L->isClosed() && R->isClosed();
  Proto.Op = Op;
  Proto.C0 = L;
  Proto.C1 = R;
  return unique(std::move(Proto));
}

const Expr *ExprContext::sel(const Expr *Mem, const Expr *Addr) {
  assert(Mem->kind() == ExprKind::Mem && "sel needs a memory expression");
  assert(Addr->kind() == ExprKind::Int && "sel needs an integer address");
  Expr Proto;
  Proto.NK = ExprNodeKind::Sel;
  Proto.K = ExprKind::Int;
  Proto.Closed = Mem->isClosed() && Addr->isClosed();
  Proto.C0 = Mem;
  Proto.C1 = Addr;
  return unique(std::move(Proto));
}

const Expr *ExprContext::upd(const Expr *Mem, const Expr *Addr,
                             const Expr *Val) {
  assert(Mem->kind() == ExprKind::Mem && "upd needs a memory expression");
  assert(Addr->kind() == ExprKind::Int && "upd needs an integer address");
  assert(Val->kind() == ExprKind::Int && "upd needs an integer value");
  Expr Proto;
  Proto.NK = ExprNodeKind::Upd;
  Proto.K = ExprKind::Mem;
  Proto.Closed = Mem->isClosed() && Addr->isClosed() && Val->isClosed();
  Proto.C0 = Mem;
  Proto.C1 = Addr;
  Proto.C2 = Val;
  return unique(std::move(Proto));
}
