//===- sexpr/Expr.cpp -----------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "sexpr/Expr.h"

#include "support/Unreachable.h"

using namespace talft;

static bool needsParens(const Expr *E) {
  return E->isBinOp() || E->isSel() || E->isUpd();
}

static std::string childStr(const Expr *E) {
  if (needsParens(E))
    return "(" + E->str() + ")";
  return E->str();
}

std::string Expr::str() const {
  switch (NK) {
  case ExprNodeKind::Var:
    return Name;
  case ExprNodeKind::IntConst:
    return std::to_string(IntVal);
  case ExprNodeKind::BinOp: {
    const char *OpStr = Op == Opcode::Add   ? " + "
                        : Op == Opcode::Sub ? " - "
                                            : " * ";
    return childStr(C0) + OpStr + childStr(C1);
  }
  case ExprNodeKind::Sel:
    return "sel " + childStr(C0) + " " + childStr(C1);
  case ExprNodeKind::Emp:
    return "emp";
  case ExprNodeKind::Upd:
    return "upd " + childStr(C0) + " " + childStr(C1) + " " + childStr(C2);
  }
  talft_unreachable("unknown expression node kind");
}

int talft::compareExprs(const Expr *A, const Expr *B) {
  if (A == B)
    return 0;
  if (A->nodeKind() != B->nodeKind())
    return (int)A->nodeKind() < (int)B->nodeKind() ? -1 : 1;
  switch (A->nodeKind()) {
  case ExprNodeKind::Var:
    return A->varName().compare(B->varName());
  case ExprNodeKind::IntConst:
    return A->intValue() < B->intValue() ? -1
           : A->intValue() == B->intValue() ? 0
                                            : 1;
  case ExprNodeKind::BinOp: {
    if (A->binOp() != B->binOp())
      return (int)A->binOp() < (int)B->binOp() ? -1 : 1;
    if (int C = compareExprs(A->child0(), B->child0()))
      return C;
    return compareExprs(A->child1(), B->child1());
  }
  case ExprNodeKind::Sel: {
    if (int C = compareExprs(A->child0(), B->child0()))
      return C;
    return compareExprs(A->child1(), B->child1());
  }
  case ExprNodeKind::Emp:
    return 0;
  case ExprNodeKind::Upd: {
    if (int C = compareExprs(A->child0(), B->child0()))
      return C;
    if (int C = compareExprs(A->child1(), B->child1()))
      return C;
    return compareExprs(A->child2(), B->child2());
  }
  }
  talft_unreachable("unknown expression node kind");
}
