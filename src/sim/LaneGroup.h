//===- sim/LaneGroup.h - The lane-group task handoff contract -------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine-agnostic handoff between the fault campaign's work list and a
/// batched lane executor (vm/LaneEngine.h): the campaign collects faulty
/// continuations that share one resume point — same reference step, hence
/// the same program counters, step budget and probe schedule — and hands
/// the whole batch over as one lane group. The executor advances every
/// lane through the shared instruction stream and reports, per lane, the
/// same RunStatus the scalar ExecEngine::runContinuation contract defines,
/// so the caller's verdict logic is oblivious to how the continuation was
/// executed.
///
/// The contract deliberately mirrors ExecEngine::ConvergenceProbe and the
/// OutputSink, with a lane index threaded through each callback: outputs
/// feed per-lane prefix trackers, and a probe Verify confirms one lane's
/// re-convergence (the reference-state reconstruction it performs can be
/// cached across lanes of a group, which probe the same boundary indices
/// in lockstep).
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SIM_LANEGROUP_H
#define TALFT_SIM_LANEGROUP_H

#include "sim/Machine.h"

#include <functional>

namespace talft {

/// The convergence early-exit contract for a lane group: identical to
/// ExecEngine::ConvergenceProbe except that Verify names the lane, letting
/// the caller consult per-lane output trackers and share the reference
/// reconstruction across lanes. Probing happens at fetch boundaries, after
/// the exit check and before the budget check, exactly as in the scalar
/// engines — so a lane's probe sequence is the one its scalar run would
/// have seen.
struct LaneProbe {
  /// Timeline[k] = fingerprint of the reference state after k steps.
  const uint64_t *Timeline = nullptr;
  size_t Size = 0;
  /// Absolute reference-step index of the group's starting states.
  uint64_t StartStep = 0;
  /// Probe only boundary indices Idx with (Idx & Mask) == 0.
  uint64_t Mask = 0;
  /// Full-equality confirmation for one lane; called only on a
  /// fingerprint match. Returning true retires the lane as Converged.
  std::function<bool(unsigned Lane, const MachineState &S, uint64_t Idx)>
      Verify;
};

/// One lane group's execution parameters — the runContinuation arguments,
/// shared by every lane (the grouping invariant: all lanes resume from the
/// same reference step).
struct LaneGroupSpec {
  Addr ExitAddr = 0;
  uint64_t Budget = 0;
  StepPolicy Policy;
  /// Invoked for each committed store, tagged with the emitting lane.
  std::function<void(unsigned Lane, const QueueEntry &)> OnOutput;
  const LaneProbe *Probe = nullptr;
  /// When set, the caller guarantees every lane's value memory equals
  /// *SharedMem at entry and passes the lane states with an *empty* Mem
  /// field; the executor reads the shared memory and gives a lane its own
  /// copy only on its first store (fault continuations rarely live long
  /// enough to commit one, so most lanes never pay the copy). The pointee
  /// must outlive the run. Lane states handed back (or to probe Verify)
  /// always carry a materialized memory.
  const ValueMemory *SharedMem = nullptr;
};

/// Per-lane outcome: the RunStatus the scalar classifier would have seen,
/// plus bookkeeping for the campaign's lane statistics.
struct LaneOutcome {
  RunStatus Status = RunStatus::Halted;
  /// True when the lane left the lockstep group (control-flow divergence)
  /// and finished on the scalar fallback engine.
  bool Deviated = false;
  /// Transitions the lane spent inside the lockstep group.
  uint64_t GroupSteps = 0;
};

} // namespace talft

#endif // TALFT_SIM_LANEGROUP_H
