//===- sim/Machine.h - Multi-step execution driver ------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the small-step semantics for whole runs: collects the observable
/// output trace, counts steps, and recognizes the halting convention.
///
/// TALFT has no halt instruction (well-typed programs never get stuck, so
/// a finished program must keep running). By convention a program halts by
/// transferring control to a designated *exit block* — a well-typed
/// self-loop — and the driver reports Halted when a fetch is about to
/// execute from the exit address.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SIM_MACHINE_H
#define TALFT_SIM_MACHINE_H

#include "sim/Step.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace talft {

/// The observable output trace: the sequence s of committed stores.
using OutputTrace = std::vector<QueueEntry>;

/// Why a run stopped.
enum class RunStatus : uint8_t {
  /// Reached the exit block with both program counters agreeing.
  Halted,
  /// The hardware detected a fault (transition to the fault state).
  FaultDetected,
  /// No rule fired (never happens for well-typed programs).
  Stuck,
  /// The step budget ran out.
  OutOfSteps,
  /// A convergence probe proved the run has re-joined the reference
  /// execution (continuation runs only; see ExecEngine::ConvergenceProbe).
  /// Determinism makes the rest of the run identical to the reference, so
  /// the campaign classifies without executing it.
  Converged,
};

/// Human-readable status name.
const char *runStatusName(RunStatus St);

/// The result of a whole run.
struct RunResult {
  RunStatus Status = RunStatus::OutOfSteps;
  /// Number of transitions taken (fetches count as steps, as in the
  /// paper's n-step relation).
  uint64_t Steps = 0;
  /// The observable output trace s.
  OutputTrace Trace;
};

/// Executes \p S until halt / fault / stuck or \p MaxSteps transitions.
/// \p ExitAddr is the entry address of the exit block (0 disables halt
/// detection).
RunResult run(MachineState &S, Addr ExitAddr, uint64_t MaxSteps,
              const StepPolicy &Policy = StepPolicy());

/// True when \p S is an ordinary state about to fetch from \p ExitAddr
/// with agreeing program counters (the halt condition).
bool atExit(const MachineState &S, Addr ExitAddr);

/// The outcome of replaySteps: the status of the last transition taken and
/// how many transitions were actually taken.
struct ReplayResult {
  StepStatus Last = StepStatus::Ok;
  uint64_t Taken = 0;
};

/// Executes exactly \p NSteps transitions in place, stopping early only
/// when a transition faults or gets stuck, and appending observable
/// outputs to \p Trace. Deterministic semantics make this an exact
/// substitute for restoring a step-\p NSteps snapshot of the same run.
ReplayResult replaySteps(MachineState &S, uint64_t NSteps, OutputTrace &Trace,
                         const StepPolicy &Policy = StepPolicy());

/// True when \p Prefix is a prefix of \p Full (the fault-tolerance
/// theorem's output condition for detected faults).
bool isTracePrefix(const OutputTrace &Prefix, const OutputTrace &Full);

} // namespace talft

#endif // TALFT_SIM_MACHINE_H
