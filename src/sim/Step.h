//===- sim/Step.h - Small-step operational semantics (Figures 2-4, A.1) ---===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-step transition S1 -(s,k)-> S2 of the TALFT machine,
/// restricted to the k=0 (non-faulty) transitions; the k=1 fault
/// transitions (reg-zap, Q-zap1, Q-zap2) live in fault/FaultInjector.h.
///
/// The machine alternates instruction fetch (when the instruction register
/// is empty) with instruction execution. The only externally observable
/// behavior is the sequence s of (address, value) pairs written to memory
/// (a memory-mapped output device reads them) and the signaling of a
/// hardware-detected fault.
///
/// Two of the rules — a wild load's ldG-rand / ldB-rand vs. ldG-fail /
/// ldB-fail — are genuinely nondeterministic in the paper (a load from an
/// invalid address may trap like a segmentation fault or return garbage);
/// StepPolicy selects which rule the simulator fires.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SIM_STEP_H
#define TALFT_SIM_STEP_H

#include "isa/MachineState.h"

#include <optional>
#include <vector>

namespace talft {

/// Outcome classification of one step.
enum class StepStatus : uint8_t {
  /// Stepped to an ordinary state.
  Ok,
  /// Stepped to the distinguished `fault` state (hardware detection).
  Fault,
  /// No rule fires (well-typed programs never get stuck, even with one
  /// fault — Theorem 1).
  Stuck,
};

/// Behavior of loads from addresses outside Dom(M).
enum class WildLoadPolicy : uint8_t {
  /// Fire ldG-fail / ldB-fail: trap to the fault state.
  Trap,
  /// Fire ldG-rand / ldB-rand: load an arbitrary value.
  Garbage,
};

/// Configuration for the nondeterministic rules.
struct StepPolicy {
  WildLoadPolicy WildLoad = WildLoadPolicy::Trap;
  /// The "arbitrary" value a Garbage wild load produces.
  int64_t GarbageValue = 0xDEAD;
};

/// The result of one transition.
struct StepResult {
  StepStatus Status = StepStatus::Ok;
  /// The observable output s of this step: empty, or one committed store.
  std::optional<QueueEntry> Output;
  /// The name of the operational rule that fired (e.g. "stB-mem"),
  /// matching the paper's rule names; null only for Stuck.
  const char *Rule = nullptr;
};

/// Performs one non-faulty transition in place. \p S must not already be
/// the fault state. On StepStatus::Fault, \p S becomes the fault state.
StepResult step(MachineState &S, const StepPolicy &Policy = StepPolicy());

} // namespace talft

#endif // TALFT_SIM_STEP_H
