//===- sim/Step.h - Small-step operational semantics (Figures 2-4, A.1) ---===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-step transition S1 -(s,k)-> S2 of the TALFT machine,
/// restricted to the k=0 (non-faulty) transitions; the k=1 fault
/// transitions (reg-zap, Q-zap1, Q-zap2) live in fault/FaultInjector.h.
///
/// The machine alternates instruction fetch (when the instruction register
/// is empty) with instruction execution. The only externally observable
/// behavior is the sequence s of (address, value) pairs written to memory
/// (a memory-mapped output device reads them) and the signaling of a
/// hardware-detected fault.
///
/// Two of the rules — a wild load's ldG-rand / ldB-rand vs. ldG-fail /
/// ldB-fail — are genuinely nondeterministic in the paper (a load from an
/// invalid address may trap like a segmentation fault or return garbage);
/// StepPolicy selects which rule the simulator fires.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SIM_STEP_H
#define TALFT_SIM_STEP_H

#include "isa/MachineState.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace talft {

/// Outcome classification of one step.
enum class StepStatus : uint8_t {
  /// Stepped to an ordinary state.
  Ok,
  /// Stepped to the distinguished `fault` state (hardware detection).
  Fault,
  /// No rule fires (well-typed programs never get stuck, even with one
  /// fault — Theorem 1).
  Stuck,
};

/// Behavior of loads from addresses outside Dom(M).
enum class WildLoadPolicy : uint8_t {
  /// Fire ldG-fail / ldB-fail: trap to the fault state.
  Trap,
  /// Fire ldG-rand / ldB-rand: load an arbitrary value.
  Garbage,
};

/// Runtime CFI validation of committed control transfers against a static
/// target-set analysis. Record-only: engines consult the table on every
/// jmpB / taken bzB *after* the commit's cross-check passes and count the
/// transfer, but never alter execution, so verdict tables stay
/// bit-identical with and without checking.
///
/// A single zap can corrupt one pc after fetch while the commit (which
/// compares d against Rd, not the pcs) still succeeds and overwrites both
/// pcs with the verified target. The committing instruction's address is
/// therefore taken from *either* pc: a transfer is a violation only when
/// neither pc names a site that allows the target and at least one pc
/// names a known commit site — anything weaker would report analysis bugs
/// that are really pc corruption, anything stronger would miss real ones.
///
/// Thread-safe: campaigns share one table across worker threads.
class CfiTable {
public:
  CfiTable(Addr Base, size_t NumInsts)
      : Base(Base), Checked(NumInsts, 0), Allowed(NumInsts) {}

  /// Declares the static target set of the commit at \p A (sorted or not;
  /// stored sorted).
  void setAllowed(Addr A, std::vector<int64_t> Targets) {
    std::sort(Targets.begin(), Targets.end());
    size_t I = (size_t)(A - Base);
    Checked[I] = 1;
    Allowed[I] = std::move(Targets);
  }

  /// True when \p A is a declared commit site whose set admits \p Target.
  bool allows(int64_t A, int64_t Target) const {
    size_t I = index(A);
    if (I == Npos || !Checked[I])
      return false;
    const std::vector<int64_t> &T = Allowed[I];
    return std::binary_search(T.begin(), T.end(), Target);
  }

  /// True when \p A is a declared commit site.
  bool isCommitSite(int64_t A) const {
    size_t I = index(A);
    return I != Npos && Checked[I];
  }

  /// Records one committed transfer to \p Target from the instruction the
  /// pcs name (they may disagree by one zap). Returns true on violation.
  bool recordCommit(int64_t PcG, int64_t PcB, int64_t Target) const {
    Commits.fetch_add(1, std::memory_order_relaxed);
    if (allows(PcG, Target) || allows(PcB, Target))
      return false;
    if (!isCommitSite(PcG) && !isCommitSite(PcB))
      return false; // Both sites corrupted away from any commit: no claim.
    Violations.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(FirstMutex);
    if (First.empty())
      First = "commit at pcG=" + std::to_string(PcG) +
              " pcB=" + std::to_string(PcB) + " to target " +
              std::to_string(Target) + " outside the static set";
    return true;
  }

  uint64_t commits() const { return Commits.load(std::memory_order_relaxed); }
  uint64_t violations() const {
    return Violations.load(std::memory_order_relaxed);
  }
  /// Description of the first violation (empty when none).
  std::string firstViolation() const {
    std::lock_guard<std::mutex> Lock(FirstMutex);
    return First;
  }

private:
  static constexpr size_t Npos = (size_t)-1;

  size_t index(int64_t A) const {
    if (A < (int64_t)Base || (uint64_t)(A - (int64_t)Base) >= Checked.size())
      return Npos;
    return (size_t)(A - (int64_t)Base);
  }

  Addr Base = 1;
  std::vector<uint8_t> Checked;
  std::vector<std::vector<int64_t>> Allowed;
  mutable std::atomic<uint64_t> Commits{0};
  mutable std::atomic<uint64_t> Violations{0};
  mutable std::mutex FirstMutex;
  mutable std::string First;
};

/// Configuration for the nondeterministic rules.
struct StepPolicy {
  WildLoadPolicy WildLoad = WildLoadPolicy::Trap;
  /// The "arbitrary" value a Garbage wild load produces.
  int64_t GarbageValue = 0xDEAD;
  /// When set, committed transfers are validated (record-only) against
  /// this table. A pointer keeps StepPolicy copyable and cheap.
  const CfiTable *Cfi = nullptr;
};

/// The result of one transition.
struct StepResult {
  StepStatus Status = StepStatus::Ok;
  /// The observable output s of this step: empty, or one committed store.
  std::optional<QueueEntry> Output;
  /// The name of the operational rule that fired (e.g. "stB-mem"),
  /// matching the paper's rule names; null only for Stuck.
  const char *Rule = nullptr;
};

/// Performs one non-faulty transition in place. \p S must not already be
/// the fault state. On StepStatus::Fault, \p S becomes the fault state.
StepResult step(MachineState &S, const StepPolicy &Policy = StepPolicy());

} // namespace talft

#endif // TALFT_SIM_STEP_H
