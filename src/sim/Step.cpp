//===- sim/Step.cpp -------------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "sim/Step.h"

#include "support/Unreachable.h"

using namespace talft;

namespace {

/// Helper bundling the state mutation for one instruction execution.
class Executor {
public:
  Executor(MachineState &S, const StepPolicy &Policy) : S(S), Policy(Policy) {}

  StepResult run(const Inst &I) {
    switch (I.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
      return execAlu(I);
    case Opcode::Mov:
      return execMov(I);
    case Opcode::Ld:
      return I.C == Color::Green ? execLdG(I) : execLdB(I);
    case Opcode::St:
      return I.C == Color::Green ? execStG(I) : execStB(I);
    case Opcode::Jmp:
      return I.C == Color::Green ? execJmpG(I) : execJmpB(I);
    case Opcode::Bz:
      return execBz(I);
    }
    talft_unreachable("unknown opcode");
  }

private:
  MachineState &S;
  const StepPolicy &Policy;

  StepResult ok(const char *Rule) {
    S.IR.reset();
    return {StepStatus::Ok, std::nullopt, Rule};
  }

  StepResult okWithOutput(const char *Rule, QueueEntry Out) {
    S.IR.reset();
    return {StepStatus::Ok, Out, Rule};
  }

  StepResult toFault(const char *Rule) {
    S = MachineState::faultState();
    return {StepStatus::Fault, std::nullopt, Rule};
  }

  // Rules op2r / op1r: the result takes the color of the second operand.
  StepResult execAlu(const Inst &I) {
    RegisterFile &R = S.Regs;
    if (I.HasImm) {
      Value V(I.Imm.C, evalAluOp(I.Op, R.val(I.Rs), I.Imm.N));
      R.incrementPCs();
      R.set(I.Rd, V);
      return ok("op1r");
    }
    Value V(R.col(I.Rt), evalAluOp(I.Op, R.val(I.Rs), R.val(I.Rt)));
    R.incrementPCs();
    R.set(I.Rd, V);
    return ok("op2r");
  }

  StepResult execMov(const Inst &I) {
    S.Regs.incrementPCs();
    S.Regs.set(I.Rd, I.Imm);
    return ok("mov");
  }

  // Rule stG-queue: push (Rval(rd), Rval(rs)) onto the queue front.
  StepResult execStG(const Inst &I) {
    S.Queue.pushFront({S.Regs.val(I.Rd), S.Regs.val(I.Rs)});
    S.Regs.incrementPCs();
    return ok("stG-queue");
  }

  // Rules stB-mem / stB-queue-fail / stB-mem-fail: compare operands with
  // the queue back; commit on agreement, detect a fault otherwise.
  StepResult execStB(const Inst &I) {
    if (S.Queue.empty())
      return toFault("stB-queue-fail");
    QueueEntry Back = S.Queue.back();
    if (S.Regs.val(I.Rd) != Back.Address || S.Regs.val(I.Rs) != Back.Val)
      return toFault("stB-mem-fail");
    S.Queue.popBack();
    S.Mem.set(Back.Address, Back.Val);
    S.Regs.incrementPCs();
    return okWithOutput("stB-mem", Back);
  }

  // Rules ldG-queue / ldG-mem / ldG-fail / ldG-rand: the green load checks
  // the store queue first so the green computation can read its own
  // pending stores.
  StepResult execLdG(const Inst &I) {
    Addr A = S.Regs.val(I.Rs);
    if (std::optional<int64_t> Pending = S.Queue.find(A)) {
      S.Regs.incrementPCs();
      S.Regs.set(I.Rd, Value::green(*Pending));
      return ok("ldG-queue");
    }
    if (std::optional<int64_t> Cell = S.Mem.lookup(A)) {
      S.Regs.incrementPCs();
      S.Regs.set(I.Rd, Value::green(*Cell));
      return ok("ldG-mem");
    }
    if (Policy.WildLoad == WildLoadPolicy::Trap)
      return toFault("ldG-fail");
    S.Regs.incrementPCs();
    S.Regs.set(I.Rd, Value::green(Policy.GarbageValue));
    return ok("ldG-rand");
  }

  // Rules ldB-mem / ldB-fail / ldB-rand: the blue load goes straight to
  // memory, ignoring the queue.
  StepResult execLdB(const Inst &I) {
    Addr A = S.Regs.val(I.Rs);
    if (std::optional<int64_t> Cell = S.Mem.lookup(A)) {
      S.Regs.incrementPCs();
      S.Regs.set(I.Rd, Value::blue(*Cell));
      return ok("ldB-mem");
    }
    if (Policy.WildLoad == WildLoadPolicy::Trap)
      return toFault("ldB-fail");
    S.Regs.incrementPCs();
    S.Regs.set(I.Rd, Value::blue(Policy.GarbageValue));
    return ok("ldB-rand");
  }

  // Rules jmpG / jmpG-fail: record the green intention in d.
  StepResult execJmpG(const Inst &I) {
    RegisterFile &R = S.Regs;
    if (R.val(Reg::dest()) != 0)
      return toFault("jmpG-fail");
    Value Target = R.get(I.Rd);
    R.incrementPCs();
    R.set(Reg::dest(), Target);
    return ok("jmpG");
  }

  // Rules jmpB / jmpB-fail: commit the transfer if both computations agree.
  StepResult execJmpB(const Inst &I) {
    RegisterFile &R = S.Regs;
    if (R.val(Reg::dest()) == 0 || R.val(I.Rd) != R.val(Reg::dest()))
      return toFault("jmpB-fail");
    if (Policy.Cfi)
      Policy.Cfi->recordCommit(R.val(Reg::pcG()), R.val(Reg::pcB()),
                               R.val(I.Rd));
    R.set(Reg::pcG(), R.get(Reg::dest()));
    R.set(Reg::pcB(), R.get(I.Rd));
    R.set(Reg::dest(), Value::green(0));
    return ok("jmpB");
  }

  // Rules bz-untaken / bzG-taken / bzB-taken and their -fail variants.
  StepResult execBz(const Inst &I) {
    RegisterFile &R = S.Regs;
    int64_t Z = R.val(I.rz());
    int64_t D = R.val(Reg::dest());
    if (Z != 0) {
      // Fall through — but only if no prior bz of the other color decided
      // to take the branch.
      if (D != 0)
        return toFault("bz-untaken-fail");
      R.incrementPCs();
      return ok("bz-untaken");
    }
    if (I.C == Color::Green) {
      if (D != 0)
        return toFault("bzG-taken-fail");
      Value Target = R.get(I.Rd);
      R.incrementPCs();
      R.set(Reg::dest(), Target);
      return ok("bzG-taken");
    }
    // Blue taken: commit like jmpB.
    if (D == 0 || R.val(I.Rd) != D)
      return toFault("bzB-taken-fail");
    if (Policy.Cfi)
      Policy.Cfi->recordCommit(R.val(Reg::pcG()), R.val(Reg::pcB()),
                               R.val(I.Rd));
    R.set(Reg::pcG(), R.get(Reg::dest()));
    R.set(Reg::pcB(), R.get(I.Rd));
    R.set(Reg::dest(), Value::green(0));
    return ok("bzB-taken");
  }
};

} // namespace

StepResult talft::step(MachineState &S, const StepPolicy &Policy) {
  assert(!S.isFault() && "stepping the fault state");
  assert(S.Code && "machine state without code memory");

  // Execute a fetched instruction, if any.
  if (S.IR)
    return Executor(S, Policy).run(*S.IR);

  // Rules fetch / fetch-fail.
  Value PcG = S.pcG(), PcB = S.pcB();
  if (PcG.N != PcB.N) {
    S = MachineState::faultState();
    return {StepStatus::Fault, std::nullopt, "fetch-fail"};
  }
  if (!S.Code->contains(PcG.N))
    return {StepStatus::Stuck, std::nullopt, nullptr};
  S.IR = S.Code->get(PcG.N);
  return {StepStatus::Ok, std::nullopt, "fetch"};
}
