//===- sim/Machine.cpp ----------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

#include "support/Unreachable.h"

using namespace talft;

const char *talft::runStatusName(RunStatus St) {
  switch (St) {
  case RunStatus::Halted:
    return "halted";
  case RunStatus::FaultDetected:
    return "fault-detected";
  case RunStatus::Stuck:
    return "stuck";
  case RunStatus::OutOfSteps:
    return "out-of-steps";
  case RunStatus::Converged:
    return "converged";
  }
  talft_unreachable("unknown run status");
}

bool talft::atExit(const MachineState &S, Addr ExitAddr) {
  if (S.isFault() || S.IR || ExitAddr == 0)
    return false;
  return S.pcG().N == ExitAddr && S.pcB().N == ExitAddr;
}

RunResult talft::run(MachineState &S, Addr ExitAddr, uint64_t MaxSteps,
                     const StepPolicy &Policy) {
  RunResult Result;
  while (Result.Steps < MaxSteps) {
    if (atExit(S, ExitAddr)) {
      Result.Status = RunStatus::Halted;
      return Result;
    }
    StepResult SR = step(S, Policy);
    if (SR.Status == StepStatus::Stuck) {
      Result.Status = RunStatus::Stuck;
      return Result;
    }
    ++Result.Steps;
    if (SR.Output)
      Result.Trace.push_back(*SR.Output);
    if (SR.Status == StepStatus::Fault) {
      Result.Status = RunStatus::FaultDetected;
      return Result;
    }
  }
  Result.Status = RunStatus::OutOfSteps;
  return Result;
}

ReplayResult talft::replaySteps(MachineState &S, uint64_t NSteps,
                                OutputTrace &Trace,
                                const StepPolicy &Policy) {
  ReplayResult Result;
  while (Result.Taken < NSteps) {
    StepResult SR = step(S, Policy);
    if (SR.Status == StepStatus::Stuck) {
      Result.Last = StepStatus::Stuck;
      return Result;
    }
    ++Result.Taken;
    if (SR.Output)
      Trace.push_back(*SR.Output);
    if (SR.Status == StepStatus::Fault) {
      Result.Last = StepStatus::Fault;
      return Result;
    }
  }
  return Result;
}

bool talft::isTracePrefix(const OutputTrace &Prefix, const OutputTrace &Full) {
  if (Prefix.size() > Full.size())
    return false;
  for (size_t I = 0, E = Prefix.size(); I != E; ++I)
    if (!(Prefix[I] == Full[I]))
      return false;
  return true;
}
