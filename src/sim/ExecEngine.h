//===- sim/ExecEngine.h - Pluggable execution engines ---------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ExecEngine is one implementation of the TALFT operational semantics:
/// given a MachineState it performs the same transitions, produces the same
/// outputs and stops for the same reasons as the structural interpreter in
/// sim/Step.cpp. Engines exist so the fault-injection campaign can swap its
/// replay substrate (the scaling bottleneck of the Theorem 4 sweep) without
/// changing a single verdict: every engine is required to be observationally
/// bit-identical to the reference — same OutputTrace, same RunStatus, same
/// step counts, same StepPolicy handling — on every state, including the
/// corrupted mid-instruction states the fault model produces.
///
/// Two implementations ship:
///   - referenceEngine(): the structural small-step interpreter (Step.cpp),
///     stateless, valid for any program;
///   - vm::createEngine() (vm/Engine.h): a pre-decoded micro-op engine bound
///     to one CodeMemory, roughly an order of magnitude faster per step.
///
/// The checkpoint/rollback layer (recover/RecoveringEngine.h) composes on
/// top of this interface: it drives any engine through step() and turns the
/// fail-stop detections engines report into rollback-and-replay. Because it
/// only observes the engine-independent step contract, the layer inherits
/// the bit-identical-verdicts guarantee for free.
///
/// Engines are immutable after construction and safe to share across the
/// campaign's worker threads: all execution state lives in the MachineState
/// the caller passes in.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SIM_EXECENGINE_H
#define TALFT_SIM_EXECENGINE_H

#include "sim/Machine.h"

#include <functional>

namespace talft {

/// A pluggable implementation of the small-step semantics.
class ExecEngine {
public:
  /// Observer invoked for each committed store of a fused execution loop
  /// (the campaign classifier match-tracks outputs without materializing
  /// faulty traces).
  using OutputSink = std::function<void(const QueueEntry &)>;

  /// The convergence early-exit contract of runContinuation. The campaign
  /// records the reference run's per-step fingerprint timeline; when a
  /// faulty continuation reaches a fetch boundary (empty instruction
  /// register) whose fingerprint equals the reference fingerprint at the
  /// same absolute step index, the engine calls Verify with the state and
  /// that index. Verify performs the *full* state-equality confirmation —
  /// the fingerprint match only gates it, a collision must never change a
  /// verdict — and returns true iff the run has provably re-joined the
  /// reference, upon which runContinuation returns RunStatus::Converged
  /// with the state left at the convergence point. Probing happens after
  /// the exit check and before the budget check, in every engine, so the
  /// probe sequence (and hence the convergence statistics) is
  /// engine-independent.
  struct ConvergenceProbe {
    /// Timeline[k] = fingerprint of the reference state after k steps;
    /// Size == reference steps + 1.
    const uint64_t *Timeline = nullptr;
    size_t Size = 0;
    /// Absolute reference-step index of the continuation's starting state
    /// (the probe index is StartStep + transitions taken so far).
    uint64_t StartStep = 0;
    /// Probe only boundaries whose index Idx satisfies (Idx & Mask) == 0
    /// (Mask + 1 must be a power of two; 0 = every fetch boundary).
    /// Thinning the probe is verdict-neutral — a run that has re-joined
    /// the reference stays re-joined, so it converges at the next probed
    /// boundary instead — and it keeps the fingerprint compose off the
    /// hot path of continuations that never converge. Both engines apply
    /// the same mask, so the probe sequence stays engine-independent.
    uint64_t Mask = 0;
    /// Full-equality confirmation; called only on a fingerprint match.
    std::function<bool(const MachineState &S, uint64_t Idx)> Verify;
  };

  virtual ~ExecEngine() = default;

  /// Stable engine name ("reference", "vm") used in CLIs and JSON reports.
  virtual const char *name() const = 0;

  /// One transition of \p S; exactly talft::step.
  virtual StepResult step(MachineState &S, const StepPolicy &Policy) const = 0;

  /// Whole-run driver; exactly talft::run (budget checked before the exit
  /// condition, so a run that needs its full budget reports OutOfSteps).
  virtual RunResult run(MachineState &S, Addr ExitAddr, uint64_t MaxSteps,
                        const StepPolicy &Policy) const = 0;

  /// Exactly talft::replaySteps: \p NSteps transitions in place, stopping
  /// early only on fault/stuck, appending outputs to \p Trace.
  virtual ReplayResult replaySteps(MachineState &S, uint64_t NSteps,
                                   OutputTrace &Trace,
                                   const StepPolicy &Policy) const = 0;

  /// The faulty-continuation loop of the campaign classifier: checks the
  /// exit condition *before* the budget on every transition (unlike run),
  /// so a continuation arriving at the exit block with zero budget left
  /// still counts as Halted. Invokes \p OnOutput for each committed store.
  /// With a non-null \p Probe, fetch boundaries are additionally checked
  /// for re-convergence with the reference run (see ConvergenceProbe).
  /// Returns Halted / FaultDetected / Stuck / OutOfSteps / Converged.
  virtual RunStatus runContinuation(MachineState &S, Addr ExitAddr,
                                    uint64_t Budget, const StepPolicy &Policy,
                                    const OutputSink &OnOutput,
                                    const ConvergenceProbe *Probe) const = 0;

  /// Probe-less convenience overload.
  RunStatus runContinuation(MachineState &S, Addr ExitAddr, uint64_t Budget,
                            const StepPolicy &Policy,
                            const OutputSink &OnOutput) const {
    return runContinuation(S, ExitAddr, Budget, Policy, OnOutput, nullptr);
  }
};

/// The structural small-step interpreter as an engine. Stateless; valid for
/// any program.
const ExecEngine &referenceEngine();

} // namespace talft

#endif // TALFT_SIM_EXECENGINE_H
