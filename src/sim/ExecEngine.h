//===- sim/ExecEngine.h - Pluggable execution engines ---------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ExecEngine is one implementation of the TALFT operational semantics:
/// given a MachineState it performs the same transitions, produces the same
/// outputs and stops for the same reasons as the structural interpreter in
/// sim/Step.cpp. Engines exist so the fault-injection campaign can swap its
/// replay substrate (the scaling bottleneck of the Theorem 4 sweep) without
/// changing a single verdict: every engine is required to be observationally
/// bit-identical to the reference — same OutputTrace, same RunStatus, same
/// step counts, same StepPolicy handling — on every state, including the
/// corrupted mid-instruction states the fault model produces.
///
/// Two implementations ship:
///   - referenceEngine(): the structural small-step interpreter (Step.cpp),
///     stateless, valid for any program;
///   - vm::createEngine() (vm/Engine.h): a pre-decoded micro-op engine bound
///     to one CodeMemory, roughly an order of magnitude faster per step.
///
/// The checkpoint/rollback layer (recover/RecoveringEngine.h) composes on
/// top of this interface: it drives any engine through step() and turns the
/// fail-stop detections engines report into rollback-and-replay. Because it
/// only observes the engine-independent step contract, the layer inherits
/// the bit-identical-verdicts guarantee for free.
///
/// Engines are immutable after construction and safe to share across the
/// campaign's worker threads: all execution state lives in the MachineState
/// the caller passes in.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SIM_EXECENGINE_H
#define TALFT_SIM_EXECENGINE_H

#include "sim/Machine.h"

#include <functional>

namespace talft {

/// A pluggable implementation of the small-step semantics.
class ExecEngine {
public:
  /// Observer invoked for each committed store of a fused execution loop
  /// (the campaign classifier match-tracks outputs without materializing
  /// faulty traces).
  using OutputSink = std::function<void(const QueueEntry &)>;

  virtual ~ExecEngine() = default;

  /// Stable engine name ("reference", "vm") used in CLIs and JSON reports.
  virtual const char *name() const = 0;

  /// One transition of \p S; exactly talft::step.
  virtual StepResult step(MachineState &S, const StepPolicy &Policy) const = 0;

  /// Whole-run driver; exactly talft::run (budget checked before the exit
  /// condition, so a run that needs its full budget reports OutOfSteps).
  virtual RunResult run(MachineState &S, Addr ExitAddr, uint64_t MaxSteps,
                        const StepPolicy &Policy) const = 0;

  /// Exactly talft::replaySteps: \p NSteps transitions in place, stopping
  /// early only on fault/stuck, appending outputs to \p Trace.
  virtual ReplayResult replaySteps(MachineState &S, uint64_t NSteps,
                                   OutputTrace &Trace,
                                   const StepPolicy &Policy) const = 0;

  /// The faulty-continuation loop of the campaign classifier: checks the
  /// exit condition *before* the budget on every transition (unlike run),
  /// so a continuation arriving at the exit block with zero budget left
  /// still counts as Halted. Invokes \p OnOutput for each committed store.
  /// Returns Halted / FaultDetected / Stuck / OutOfSteps.
  virtual RunStatus runContinuation(MachineState &S, Addr ExitAddr,
                                    uint64_t Budget, const StepPolicy &Policy,
                                    const OutputSink &OnOutput) const = 0;
};

/// The structural small-step interpreter as an engine. Stateless; valid for
/// any program.
const ExecEngine &referenceEngine();

} // namespace talft

#endif // TALFT_SIM_EXECENGINE_H
