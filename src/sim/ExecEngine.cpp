//===- sim/ExecEngine.cpp -------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "sim/ExecEngine.h"

using namespace talft;

namespace {

/// Wraps the structural interpreter's free functions. The continuation
/// loop mirrors the campaign classifier's historical control flow exactly
/// (exit check, then budget check, then step).
class ReferenceEngine final : public ExecEngine {
public:
  const char *name() const override { return "reference"; }

  StepResult step(MachineState &S, const StepPolicy &Policy) const override {
    return talft::step(S, Policy);
  }

  RunResult run(MachineState &S, Addr ExitAddr, uint64_t MaxSteps,
                const StepPolicy &Policy) const override {
    return talft::run(S, ExitAddr, MaxSteps, Policy);
  }

  ReplayResult replaySteps(MachineState &S, uint64_t NSteps,
                           OutputTrace &Trace,
                           const StepPolicy &Policy) const override {
    return talft::replaySteps(S, NSteps, Trace, Policy);
  }

  RunStatus runContinuation(MachineState &S, Addr ExitAddr, uint64_t Budget,
                            const StepPolicy &Policy, const OutputSink &OnOutput,
                            const ConvergenceProbe *Probe) const override {
    uint64_t Taken = 0;
    while (true) {
      if (atExit(S, ExitAddr))
        return RunStatus::Halted;
      // Convergence probe, only at fetch boundaries (the vm engine probes
      // at the same points, keeping the probe sequence engine-independent).
      if (Probe && !S.IR) {
        uint64_t Idx = Probe->StartStep + Taken;
        if ((Idx & Probe->Mask) == 0 && Idx < Probe->Size &&
            S.fingerprint() == Probe->Timeline[Idx] && Probe->Verify &&
            Probe->Verify(S, Idx))
          return RunStatus::Converged;
      }
      if (Taken >= Budget)
        return RunStatus::OutOfSteps;
      StepResult SR = talft::step(S, Policy);
      ++Taken;
      if (SR.Output && OnOutput)
        OnOutput(*SR.Output);
      if (SR.Status == StepStatus::Stuck)
        return RunStatus::Stuck;
      if (SR.Status == StepStatus::Fault)
        return RunStatus::FaultDetected;
    }
  }
};

} // namespace

const ExecEngine &talft::referenceEngine() {
  static const ReferenceEngine Engine;
  return Engine;
}
