//===- fault/Campaign.h - Parallel fault-injection campaign engine --------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Theorem 4 sweep is embarrassingly parallel: every (reference step,
/// fault site, representative corruption) triple is an independent faulty
/// continuation. The campaign engine enumerates the full work list up
/// front, partitions it deterministically across a worker pool, classifies
/// each continuation into a Verdict, and merges per-worker tallies into a
/// single table. Results are bit-identical for any thread count and for
/// either resume mode: per-task verdicts are stored by task index, counters
/// are order-independent sums, and violation descriptions are emitted in
/// enumeration order with the cap applied after the merge.
///
/// Workers either resume from a per-step snapshot of the reference
/// MachineState (the default) or re-execute the reference prefix from step
/// 0; deterministic semantics make the two equivalent, and the test suite
/// checks they agree.
///
/// Campaigns that re-typecheck faulty states (Theorem 2 part 2) run
/// serially regardless of the requested thread count: the type checker
/// hash-conses expressions through the shared TypeContext, which is not
/// thread-safe. The classification-only sweep — the common case and the
/// scaling bottleneck — touches only MachineState, the step function and
/// the similarity relations, all of which are thread-pure.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_FAULT_CAMPAIGN_H
#define TALFT_FAULT_CAMPAIGN_H

#include "fault/Theorems.h"
#include "recover/RecoveringEngine.h"
#include "sim/ExecEngine.h"

#include <array>
#include <functional>
#include <string>
#include <vector>

namespace talft {

/// Classification of one injected-fault continuation.
enum class Verdict : uint8_t {
  /// Completed with the reference output trace and a final state similar
  /// to the reference modulo the corrupted color (Theorem 4, case 1).
  Masked = 0,
  /// The hardware signaled a fault and the partial output was a prefix of
  /// the reference output (Theorem 4, case 2).
  Detected,
  /// Completed with a DIFFERENT output trace. Falsifies Theorem 4.
  SilentCorruption,
  /// Completed with the reference trace, but a final state not similar to
  /// the reference.
  DissimilarState,
  /// Detected, but the partial output was not a reference prefix.
  DetectedBadPrefix,
  /// Neither completed nor was detected within the step budget.
  BudgetExhausted,
  /// A faulty state got stuck (Progress, part 2, violated).
  Stuck,
  /// A faulty state failed re-typechecking (only with
  /// TheoremConfig::TypeCheckFaultyStates).
  IllTyped,
  /// Recovery campaigns only: detection triggered rollback and the run
  /// completed with the output trace bit-identical to the reference
  /// (strictly stronger than Theorem 4's prefix).
  Recovered,
  /// Recovery campaigns only: the recovery layer gave up and escalated to
  /// fail-stop — retry budget exhausted, replay divergence, or the shared
  /// step budget running out during a rollback replay — with the emitted
  /// output still a verified reference prefix.
  RecoveryEscalated,
  /// Prune mode only: the static analysis proved the site dead (the
  /// zapped register is not live at the injection point), so the
  /// continuation is Masked without simulation (analysis/ZapCoverage.h).
  StaticallyMasked,
  /// Prune mode only: the static analysis proved the corruption trips a
  /// hardware cross-check — a d-zap with a control instruction still
  /// ahead in the reference run (the d-protocol reads d at every control
  /// step), or a pc-zap with no committing blue control in flight (the
  /// next fetch compares the pcs) — so the continuation is Detected
  /// without simulation.
  StaticallyDetected,
};

inline constexpr size_t NumVerdicts = 12;

/// Human-readable name ("masked", "detected", ...).
const char *verdictName(Verdict V);
/// Stable snake_case key used in JSON reports ("silent_corruption", ...).
const char *verdictJsonKey(Verdict V);

/// Per-verdict tallies, mergeable across workers.
struct VerdictTable {
  std::array<uint64_t, NumVerdicts> Counts{};

  uint64_t &operator[](Verdict V) { return Counts[size_t(V)]; }
  uint64_t operator[](Verdict V) const { return Counts[size_t(V)]; }

  uint64_t total() const;
  /// The benign outcomes: Masked + Detected (the two Theorem 4 cases),
  /// under recovery Recovered + RecoveryEscalated, and under pruning
  /// StaticallyMasked + StaticallyDetected.
  uint64_t benign() const;
  /// Adds \p O's tallies, saturating at UINT64_MAX instead of wrapping.
  void merge(const VerdictTable &O);

  bool operator==(const VerdictTable &) const = default;
};

/// How a worker reconstructs the reference state at an injection step.
enum class ResumeMode : uint8_t {
  /// Copy the per-step snapshot taken during the reference run (default).
  Snapshot,
  /// Re-execute the reference prefix from step 0 (slower; used to
  /// cross-check snapshot integrity).
  Replay,
};

struct CampaignProgress {
  uint64_t Completed = 0;
  uint64_t Total = 0;
};

/// Execution knobs for a campaign. Theorem-level knobs (stride, budgets,
/// site filters) stay in TheoremConfig.
struct CampaignOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). Forced to 1
  /// when the campaign re-typechecks faulty states (see file comment).
  unsigned Threads = 1;
  ResumeMode Resume = ResumeMode::Snapshot;
  /// The execution engine faulty continuations replay on (null = the
  /// structural reference interpreter). Engines are required to be
  /// observationally bit-identical, so the verdict table cannot depend on
  /// this choice; the campaign records which engine produced it in
  /// Stats.Engine. Campaigns that re-typecheck faulty states always run on
  /// the reference interpreter (TrackedRun owns the typing bookkeeping).
  const ExecEngine *Engine = nullptr;
  /// Invoke Progress after roughly every this many completed tasks
  /// (0 disables). Calls are serialized but may fire on any worker.
  uint64_t ProgressInterval = 0;
  std::function<void(const CampaignProgress &)> Progress;
  /// Discharge provably-classifiable injection sites statically instead
  /// of simulating them. Sites whose zapped register the liveness
  /// analysis proves is never read again are tallied as StaticallyMasked;
  /// when the analysis additionally vouches that the special registers
  /// appear only in their control-protocol roles, d- and pc-zaps whose
  /// outcome the d-protocol/fetch-compare semantics force are tallied as
  /// StaticallyMasked or StaticallyDetected from the reference trace
  /// alone. The verdict table keeps the same total, every pruned site
  /// folds into Masked or Detected, and the violation list is untouched —
  /// pruned and unpruned campaigns are equivalent modulo those splits.
  /// Silently ignored when the analysis cannot vouch for the CFG (a
  /// non-Exact target set makes liveness advisory only); the
  /// special-register discharge is additionally skipped for recovery and
  /// typed campaigns and when the step budget cannot cover the predicted
  /// fault.
  bool Prune = false;
  /// Validate every committed indirect control transfer (jmpB, taken
  /// bzB) in every engine against the static target sets (sim/Step.h's
  /// CfiTable). Record-only — verdicts are bit-identical with and
  /// without this flag; a nonzero violation count is a hard analysis bug
  /// surfaced in Stats.CfiViolations / CampaignResult::CfiFirstViolation.
  bool CfiCheck = false;
  /// Convergence acceleration: the reference phase records a per-step
  /// fingerprint timeline, a register access log and dense snapshots,
  /// which buy two sound shortcuts for faulty continuations. (1) Early
  /// exit: a continuation stops as soon as a full state-equality check
  /// (gated by a fingerprint match at the same step index) proves it has
  /// re-joined the reference run — determinism makes the remainder
  /// identical, so the verdict is Masked without executing the rest of
  /// the program. (2) Sparse differential replay: a register-site
  /// continuation provably executes the reference instruction stream
  /// with divergence confined to a small set of register payloads, so
  /// the classifier walks only the reference transitions that touch a
  /// tainted register (jumping between them through the access log)
  /// instead of simulating every step, and hands off to concrete
  /// simulation the moment an event falls outside the provable cases.
  /// Verdict tables and violation lists are bit-identical with and
  /// without this flag (the differential oracle asserts the fold); only
  /// wall-clock time changes. Ignored by recovery campaigns (rollback
  /// replays re-diverge from the reference) and typed campaigns (they
  /// must type every intermediate state).
  bool Converge = true;
  /// Batched lane execution: tasks that resume from the same reference
  /// step are grouped and advanced in lockstep through one decoded
  /// micro-op stream (vm/LaneEngine.h), amortizing fetch, boundary checks
  /// and fingerprint maintenance across the group. Register sites on the
  /// program counters stay scalar (their continuations diverge at the
  /// very next fetch); with Converge on, register-site tasks still go
  /// through the differential replay first and only the bailed residue is
  /// batched. Verdict tables and violation lists are bit-identical with
  /// and without lanes, for every width, engine, thread count and resume
  /// mode; only wall-clock time and the lane statistics change. Ignored
  /// by recovery campaigns, typed campaigns and plan campaigns.
  bool Lanes = true;
  /// Lanes per group (1 = degenerate scalar batching, useful for
  /// differential testing). Groups narrower than this form when a
  /// reference step has fewer batched tasks left.
  unsigned LaneWidth = 16;
  /// Deterministic shard partition of the task list: the enumerated tasks
  /// are split into ShardCount contiguous ranges (shard I covers
  /// [I*T/N, (I+1)*T/N) of the T enumerated tasks) and only shard
  /// ShardIndex is classified. Because enumeration order is deterministic
  /// and per-task verdicts are independent, folding the N shard results in
  /// index order (foldShardResult) reproduces the unsharded campaign bit
  /// for bit — table, violation list and Ok flag. Statically pruned sites
  /// are tallied by shard 0 alone so the shard tables sum exactly.
  /// ShardCount 0 or 1 means no sharding; ShardIndex >= ShardCount is a
  /// campaign-level violation. Ignored by plan campaigns (their work list
  /// is the caller's plan vector — slice it directly instead).
  unsigned ShardCount = 1;
  unsigned ShardIndex = 0;
  /// Invoked exactly once, after the shard's classification phase has
  /// fully retired (every task verdict merged) and before the stats are
  /// finalized — i.e. at the shard boundary. The serve layer's
  /// crash-isolated workers use it as the chaos injection point: a worker
  /// told to die "at a shard boundary" raises its signal here, after the
  /// work is provably complete but before any result escapes the process,
  /// which is the worst case the retry path must mask. Null = no hook.
  std::function<void(unsigned ShardIndex, unsigned ShardCount)>
      ShardRetiredHook;
};

struct CampaignStats {
  /// Injection phase only (excludes the reference run).
  double WallSeconds = 0;
  /// Reference execution and snapshotting.
  double ReferenceSeconds = 0;
  double TriplesPerSecond = 0;
  unsigned ThreadsUsed = 1;
  uint64_t Tasks = 0;
  /// Name of the engine that produced the verdicts ("reference", "vm").
  const char *Engine = "reference";
  /// True when CampaignOptions::Prune was requested and the analysis
  /// accepted the program (pruning actually ran).
  bool Pruned = false;
  /// Injections discharged statically (== Table[StaticallyMasked] +
  /// Table[StaticallyDetected]).
  uint64_t PrunedTasks = 0;
  /// Injections discharged as StaticallyDetected (the control-register
  /// plane; included in PrunedTasks).
  uint64_t PrunedDetected = 0;
  /// True when CampaignOptions::CfiCheck was requested and a target table
  /// could be built (the CFG analysis accepted the program).
  bool CfiChecked = false;
  /// Committed indirect transfers observed / flagged by the CFI hook.
  /// Commit counts are an execution-strategy diagnostic (lane grouping
  /// and convergence shortcuts legitimately change how many commits
  /// execute); the soundness claim is CfiViolations == 0.
  uint64_t CfiCommits = 0;
  uint64_t CfiViolations = 0;
  /// True when convergence probing was active for this campaign.
  bool Converge = false;
  /// Continuations classified Masked by a convergence early-exit.
  uint64_t EarlyExits = 0;
  /// Sum and max of the divergence windows (steps executed between the
  /// injection and the proven re-convergence) over all early exits.
  uint64_t WindowSum = 0;
  uint64_t MaxWindow = 0;
  /// Reference-tail steps the early exits skipped (what the full runs
  /// would have executed past the convergence points).
  uint64_t StepsSaved = 0;
  /// Register-site continuations the sparse differential replay advanced
  /// past at least one reference step without concrete simulation, and
  /// the total reference steps so discharged (fully replayed runs and
  /// the skipped prefix of runs that bailed to concrete simulation).
  uint64_t LockstepSkips = 0;
  uint64_t LockstepSteps = 0;
  /// True when batched lane execution was active for this campaign.
  bool Lanes = false;
  /// The configured group width (meaningful only with Lanes).
  unsigned LaneWidth = 0;
  /// Lane groups executed, continuations classified through the lane
  /// path, lanes that deviated to the scalar fallback mid-group, and the
  /// total lane-steps executed inside lockstep groups. All are
  /// order-independent sums, as thread-deterministic as the table — but
  /// unlike the verdict counters they legitimately differ between lane
  /// and scalar runs of the same campaign (they describe the execution
  /// strategy, not the outcome).
  uint64_t LaneGroups = 0;
  uint64_t LaneTasks = 0;
  uint64_t LaneDeviations = 0;
  uint64_t LaneLockstepSteps = 0;
  /// True when the selected engine was the JIT tier (vm/JitEngine.h) and
  /// it actually emitted native code; false under --engine jit on a host
  /// without executable mappings (the campaign then ran on the embedded
  /// vm fallback — Engine still reports "jit" so the fallback is visible
  /// as JitNative == false).
  bool JitNative = false;
  /// Micro-ops lowered to native templates and the emitted code size.
  /// Per-program constants, so foldShardResult takes the max, not the sum.
  uint64_t JitBlocksCompiled = 0;
  uint64_t JitCodeBytes = 0;
  /// Native-to-driver transitions during this campaign. Like the lane
  /// counters this describes the execution strategy, not the outcome:
  /// thread scheduling and lane grouping legitimately change it.
  uint64_t JitSideExits = 0;
  /// int64 lanes per vector op in the batched lane banks (vm/LaneSimd.h):
  /// 4 = AVX2, 2 = SSE2, 1 = portable scalar build.
  unsigned SimdLaneWidth = 0;
  /// Shard provenance: which contiguous slice of the enumerated task list
  /// this result covers. ShardCount 1 / TotalTasks == Tasks describes an
  /// unsharded run; after foldShardResult, ShardsFolded counts the shard
  /// results merged in and the slice grows back toward [0, TotalTasks).
  unsigned ShardCount = 1;
  unsigned ShardIndex = 0;
  /// First task (enumeration index) of this shard's slice.
  uint64_t ShardFirstTask = 0;
  /// Size of the full task enumeration before shard slicing (Tasks is the
  /// slice actually classified here).
  uint64_t TotalTasks = 0;
  /// Number of shard results folded into this one (0 = a direct campaign
  /// run that never went through foldShardResult).
  unsigned ShardsFolded = 0;
};

/// The merged outcome of a campaign.
struct CampaignResult {
  /// False when any continuation received a non-benign verdict, or the
  /// reference run itself failed.
  bool Ok = true;
  uint64_t ReferenceSteps = 0;
  OutputTrace ReferenceTrace;
  VerdictTable Table;
  /// States re-typed in faulty continuations (typed campaigns only).
  uint64_t StatesTypechecked = 0;
  /// Violation descriptions in task-enumeration order, capped at
  /// TheoremConfig::MaxViolations after the merge.
  std::vector<std::string> Violations;
  CampaignStats Stats;
  /// Summed checkpoint/rollback activity of all faulty continuations
  /// (recovery campaigns only; all-zero otherwise). Sums are
  /// order-independent, so this is as thread-deterministic as the table.
  RecoveryStats Recovery;
  /// Whole-program content hash (isa/ProgramHash.h) of the campaigned
  /// program: the identity half of the serve-layer memo key, recorded in
  /// every JSON report as provenance. 0 only when the initial state could
  /// not be built.
  uint64_t ProgramHash = 0;
  /// Description of the first CFI violation (empty when none or when
  /// CfiCheck was off).
  std::string CfiFirstViolation;
};

/// The Theorem 4 exhaustive single-fault sweep, parallelized. With one
/// thread this reproduces checkFaultTolerance exactly (Theorems.cpp
/// delegates here); with N threads the verdict table, violation list and
/// every counter are bit-identical to the serial run.
CampaignResult runFaultToleranceCampaign(TypeContext &TC,
                                         const CheckedProgram &CP,
                                         const TheoremConfig &Config,
                                         const CampaignOptions &Opts);

/// The same exhaustive single-fault sweep on the raw semantics (no
/// typing), so it also covers programs the checker rejects — e.g. the
/// Figure 10 kernels with dynamic addressing. Identical enumeration,
/// classification and determinism guarantees; TypeCheckFaultyStates is a
/// configuration error here. With Config.Recovery.Enabled the faulty
/// continuations run under the checkpoint/rollback layer
/// (recover/RecoveringEngine.h) and the benign verdicts become
/// Masked / Recovered / RecoveryEscalated.
CampaignResult runSingleFaultCampaign(const Program &Prog,
                                      const TheoremConfig &Config,
                                      const CampaignOptions &Opts);

/// One scheduled corruption of an explicit multi-fault plan: when the run
/// reaches \p Step transitions, replace the payload at \p Site with
/// \p Value.
struct InjectionPoint {
  uint64_t Step = 0;
  FaultSite Site;
  int64_t Value = 0;
};

/// A plan is a step-ordered list of injections (one point = the SEU model;
/// two points = the double-fault ablation).
using InjectionPlan = std::vector<InjectionPoint>;

/// A batch of explicit plans classified against one reference run. Plans
/// run on the raw semantics (no typing), so this also works for programs
/// the checker rejects.
struct PlanCampaign {
  const Program *Prog = nullptr;
  StepPolicy Policy;
  /// Budget for the reference execution.
  uint64_t MaxReferenceSteps = 100000;
  /// Faulty continuations get the remaining reference steps plus this.
  uint64_t ExtraSteps = 2000;
  std::vector<InjectionPlan> Plans;
};

/// Classifies every plan in parallel. Final-state similarity is only
/// meaningful when every injection of a plan corrupts the same color (the
/// zap tag is a single color); cross-color plans classify on the output
/// trace alone. Ok here means no plan got stuck or exhausted its budget —
/// SilentCorruption is tallied, not treated as a violation, because
/// multi-fault ablations *expect* it; callers judge the table themselves.
CampaignResult runInjectionPlans(const PlanCampaign &Spec,
                                 const CampaignOptions &Opts);

/// Folds shard result \p Shard into the accumulator \p Acc, which must be
/// initialized from the preceding shard's result (fold shard 0's result
/// into shard 1's accumulator copy, and so on, in shard-index order).
/// Tables, counters and the recovery stats are order-independent sums;
/// violations concatenate in shard order — each shard keeps a prefix of
/// its slice's violations, so the in-order concatenation capped at
/// \p MaxViolations equals the unsharded list. After folding all N shards
/// the result is bit-identical to the unsharded campaign: same table,
/// same violations, same Ok, same ReferenceSteps. Wall-clock stats sum
/// (total compute, not elapsed time); lane/convergence strategy counters
/// sum exactly because each task's classification path is deterministic.
void foldShardResult(CampaignResult &Acc, const CampaignResult &Shard,
                     size_t MaxViolations = 16);

/// Renders a campaign result as a JSON object (no trailing newline).
/// \p Indent is the number of spaces prefixed to every line, letting
/// callers nest the object in a larger report.
std::string campaignToJson(const CampaignResult &R, unsigned Indent = 0);

} // namespace talft

#endif // TALFT_FAULT_CAMPAIGN_H
