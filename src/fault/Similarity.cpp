//===- fault/Similarity.cpp -----------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "fault/Similarity.h"

using namespace talft;

bool talft::similarValues(ZapTag Z, Value A, Value B) {
  if (A == B)
    return true;
  // sim-val-zap: both values carry the zapped color.
  return A.C == B.C && Z.is(A.C);
}

bool talft::similarRegisterFiles(ZapTag Z, const RegisterFile &A,
                                 const RegisterFile &B) {
  for (unsigned I = 0; I != NumGeneralRegs; ++I)
    if (!similarValues(Z, A.get(Reg::general(I)), B.get(Reg::general(I))))
      return false;
  return similarValues(Z, A.get(Reg::dest()), B.get(Reg::dest())) &&
         similarValues(Z, A.get(Reg::pcG()), B.get(Reg::pcG())) &&
         similarValues(Z, A.get(Reg::pcB()), B.get(Reg::pcB()));
}

bool talft::similarQueues(ZapTag Z, const StoreQueue &A, const StoreQueue &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, E = A.size(); I != E; ++I) {
    const QueueEntry &EA = A.entry(I);
    const QueueEntry &EB = B.entry(I);
    if (!similarValues(Z, Value::green(EA.Address), Value::green(EB.Address)))
      return false;
    if (!similarValues(Z, Value::green(EA.Val), Value::green(EB.Val)))
      return false;
  }
  return true;
}

bool talft::similarStates(ZapTag Z, const MachineState &A,
                          const MachineState &B) {
  if (A.isFault() || B.isFault())
    return A.isFault() == B.isFault();
  if (A.Code != B.Code || !(A.Mem == B.Mem) || !(A.IR == B.IR))
    return false;
  return similarRegisterFiles(Z, A.Regs, B.Regs) &&
         similarQueues(Z, A.Queue, B.Queue);
}
