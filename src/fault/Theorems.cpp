//===- fault/Theorems.cpp -------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "fault/Theorems.h"

#include "fault/Campaign.h"
#include "support/StringUtils.h"

using namespace talft;

TheoremReport talft::checkFaultFreeExecution(TypeContext &TC,
                                             const CheckedProgram &CP,
                                             const TheoremConfig &Config) {
  TheoremReport Report;
  TrackedRun Run(TC, CP, Config.Policy);
  if (Error E = Run.start()) {
    Report.addViolation("cannot start: " + E.message(), Config.MaxViolations);
    return Report;
  }

  while (Run.steps() < Config.MaxSteps) {
    // Preservation, part 1: every reachable state is well-typed under the
    // empty zap tag.
    if (Error E = Run.checkTyped()) {
      Report.addViolation(formatv("step %llu: state not well-typed: %s",
                                  (unsigned long long)Run.steps(),
                                  E.message().c_str()),
                          Config.MaxViolations);
      break;
    }
    ++Report.StatesTypechecked;
    if (Run.atExitBlock())
      break;

    StepResult SR = Run.stepOnce();
    if (SR.Status == StepStatus::Stuck) {
      // Progress violation.
      Report.addViolation(formatv("step %llu: well-typed state is stuck",
                                  (unsigned long long)Run.steps()),
                          Config.MaxViolations);
      break;
    }
    if (SR.Status == StepStatus::Fault) {
      // Corollary 3 violation: a false positive.
      Report.addViolation(formatv("step %llu: rule %s signaled a fault "
                                  "with no fault injected",
                                  (unsigned long long)Run.steps(), SR.Rule),
                          Config.MaxViolations);
      break;
    }
  }

  Report.ReferenceSteps = Run.steps();
  Report.ReferenceTrace = Run.trace();
  return Report;
}

TheoremReport talft::checkFaultTolerance(TypeContext &TC,
                                         const CheckedProgram &CP,
                                         const TheoremConfig &Config,
                                         const ExecEngine *Engine) {
  // The exhaustive sweep is the campaign engine's single-fault campaign;
  // one worker reproduces the historical serial behavior (and the engine
  // guarantees identical verdicts for any worker count anyway).
  CampaignOptions Opts;
  Opts.Threads = 1;
  Opts.Engine = Engine;
  CampaignResult R = runFaultToleranceCampaign(TC, CP, Config, Opts);

  TheoremReport Report;
  Report.Ok = R.Ok;
  Report.ReferenceSteps = R.ReferenceSteps;
  Report.ReferenceTrace = std::move(R.ReferenceTrace);
  Report.StatesTypechecked = R.StatesTypechecked;
  Report.InjectionsTested = R.Table.total();
  Report.DetectedFaults =
      R.Table[Verdict::Detected] + R.Table[Verdict::DetectedBadPrefix];
  // The serial checker tallied every completed continuation as "masked"
  // before checking the trace and final state; keep that accounting.
  Report.MaskedFaults = R.Table[Verdict::Masked] +
                        R.Table[Verdict::SilentCorruption] +
                        R.Table[Verdict::DissimilarState];
  Report.RecoveredFaults = R.Table[Verdict::Recovered];
  Report.EscalatedFaults = R.Table[Verdict::RecoveryEscalated];
  Report.Violations = std::move(R.Violations);
  return Report;
}
