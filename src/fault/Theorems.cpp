//===- fault/Theorems.cpp -------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "fault/Theorems.h"

#include "support/StringUtils.h"

#include <set>

using namespace talft;

TheoremReport talft::checkFaultFreeExecution(TypeContext &TC,
                                             const CheckedProgram &CP,
                                             const TheoremConfig &Config) {
  TheoremReport Report;
  TrackedRun Run(TC, CP, Config.Policy);
  if (Error E = Run.start()) {
    Report.addViolation("cannot start: " + E.message(), Config.MaxViolations);
    return Report;
  }

  while (Run.steps() < Config.MaxSteps) {
    // Preservation, part 1: every reachable state is well-typed under the
    // empty zap tag.
    if (Error E = Run.checkTyped()) {
      Report.addViolation(formatv("step %llu: state not well-typed: %s",
                                  (unsigned long long)Run.steps(),
                                  E.message().c_str()),
                          Config.MaxViolations);
      break;
    }
    ++Report.StatesTypechecked;
    if (Run.atExitBlock())
      break;

    StepResult SR = Run.stepOnce();
    if (SR.Status == StepStatus::Stuck) {
      // Progress violation.
      Report.addViolation(formatv("step %llu: well-typed state is stuck",
                                  (unsigned long long)Run.steps()),
                          Config.MaxViolations);
      break;
    }
    if (SR.Status == StepStatus::Fault) {
      // Corollary 3 violation: a false positive.
      Report.addViolation(formatv("step %llu: rule %s signaled a fault "
                                  "with no fault injected",
                                  (unsigned long long)Run.steps(), SR.Rule),
                          Config.MaxViolations);
      break;
    }
  }

  Report.ReferenceSteps = Run.steps();
  Report.ReferenceTrace = Run.trace();
  return Report;
}

namespace {

/// Registers the program mentions anywhere, plus the specials.
std::set<unsigned> mentionedRegisters(const Program &Prog) {
  std::set<unsigned> Used;
  for (const Block &B : Prog.blocks()) {
    for (const ProgInst &PI : B.Insts) {
      const Inst &I = PI.I;
      Used.insert(I.Rd.denseIndex());
      Used.insert(I.Rs.denseIndex());
      if (!I.HasImm)
        Used.insert(I.Rt.denseIndex());
    }
  }
  Used.insert(Reg::dest().denseIndex());
  Used.insert(Reg::pcG().denseIndex());
  Used.insert(Reg::pcB().denseIndex());
  return Used;
}

/// Runs one faulty continuation and classifies it against the reference.
void runInjection(TypeContext &TC, const CheckedProgram &CP,
                  const TheoremConfig &Config, TrackedRun &Run,
                  const TrackedRun::Snapshot &At, const FaultSite &Site,
                  int64_t Corruption, const TrackedRun::Snapshot &RefFinal,
                  const OutputTrace &RefTrace, TheoremReport &Report) {
  Run.restore(At);
  Run.injectSingleFault(Site, Corruption);
  ++Report.InjectionsTested;

  auto Describe = [&](const char *What) {
    return formatv("inject %s := %lld at step %llu: %s", Site.str().c_str(),
                   (long long)Corruption, (unsigned long long)At.Steps, What);
  };

  uint64_t Budget = RefFinal.Steps - At.Steps + Config.ExtraSteps;
  uint64_t Taken = 0;
  uint64_t SinceInjection = 0;
  while (true) {
    if (Config.TypeCheckFaultyStates &&
        SinceInjection % Config.FaultyTypeCheckStride == 0) {
      // Preservation, part 2: the corrupted state (and its successors)
      // are well-typed under the corrupted color's zap tag.
      if (Error E = Run.checkTyped()) {
        Report.addViolation(
            Describe(("faulty state not well-typed: " + E.message()).c_str()),
            Config.MaxViolations);
        return;
      }
      ++Report.StatesTypechecked;
    }
    if (Run.atExitBlock())
      break;
    if (Taken >= Budget) {
      Report.addViolation(Describe("faulty run exceeded its step budget "
                                   "without detection or completion"),
                          Config.MaxViolations);
      return;
    }
    StepResult SR = Run.stepOnce();
    ++Taken;
    ++SinceInjection;
    if (SR.Status == StepStatus::Stuck) {
      // Progress, part 2, violated.
      Report.addViolation(Describe("faulty run got stuck"),
                          Config.MaxViolations);
      return;
    }
    if (SR.Status == StepStatus::Fault) {
      // Theorem 4, case 2: the output must be a prefix of the reference.
      ++Report.DetectedFaults;
      if (!isTracePrefix(Run.trace(), RefTrace))
        Report.addViolation(Describe("detected, but the faulty output is "
                                     "not a prefix of the reference output"),
                            Config.MaxViolations);
      return;
    }
  }

  // Theorem 4, case 1: the fault was masked. The full output must be
  // identical and the final state similar modulo the corrupted color.
  ++Report.MaskedFaults;
  if (!(Run.trace() == RefTrace)) {
    Report.addViolation(Describe("completed with a DIFFERENT output trace "
                                 "(silent data corruption)"),
                        Config.MaxViolations);
    return;
  }
  if (!similarStates(Run.zapTag(), Run.state(), RefFinal.S))
    Report.addViolation(Describe("completed but the final state is not "
                                 "similar to the reference final state"),
                        Config.MaxViolations);
  (void)TC;
  (void)CP;
}

} // namespace

TheoremReport talft::checkFaultTolerance(TypeContext &TC,
                                         const CheckedProgram &CP,
                                         const TheoremConfig &Config) {
  TheoremReport Report;
  TrackedRun Run(TC, CP, Config.Policy);
  if (Error E = Run.start()) {
    Report.addViolation("cannot start: " + E.message(), Config.MaxViolations);
    return Report;
  }

  // Reference execution, snapshotting every state.
  std::vector<TrackedRun::Snapshot> Snapshots;
  Snapshots.push_back(Run.snapshot());
  while (!Run.atExitBlock()) {
    if (Run.steps() >= Config.MaxSteps) {
      Report.addViolation("reference run exceeded MaxSteps",
                          Config.MaxViolations);
      return Report;
    }
    StepResult SR = Run.stepOnce();
    if (SR.Status != StepStatus::Ok) {
      Report.addViolation(formatv("reference run failed at step %llu (%s)",
                                  (unsigned long long)Run.steps(),
                                  SR.Status == StepStatus::Stuck
                                      ? "stuck"
                                      : "false positive"),
                          Config.MaxViolations);
      return Report;
    }
    Snapshots.push_back(Run.snapshot());
  }
  TrackedRun::Snapshot RefFinal = Run.snapshot();
  Report.ReferenceSteps = RefFinal.Steps;
  Report.ReferenceTrace = RefFinal.Trace;

  std::set<unsigned> UsedRegs;
  if (Config.OnlyMentionedRegisters)
    UsedRegs = mentionedRegisters(*CP.Prog);
  std::vector<int64_t> Corruptions = representativeCorruptions(*CP.Prog);

  for (size_t K = 0; K < Snapshots.size(); K += Config.InjectionStride) {
    const TrackedRun::Snapshot &At = Snapshots[K];
    for (const FaultSite &Site : enumerateFaultSites(At.S)) {
      if (Config.OnlyMentionedRegisters &&
          Site.K == FaultSite::Kind::Register &&
          !UsedRegs.count(Site.R.denseIndex()))
        continue;
      int64_t Current = currentValueAt(At.S, Site);
      for (int64_t Corruption : Corruptions) {
        if (Corruption == Current)
          continue; // reg-zap replaces the value with a *different* one.
        runInjection(TC, CP, Config, Run, At, Site, Corruption, RefFinal,
                     RefFinal.Trace, Report);
      }
    }
  }
  return Report;
}
