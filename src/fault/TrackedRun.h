//===- fault/TrackedRun.h - Execution with typing-substitution tracking ---===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TrackedRun executes a checked program while maintaining the closing
/// substitution that witnesses the existential of the machine-state typing
/// judgment (Figure 8): it starts from the entry block's instantiation and
/// composes the checker's recorded per-transfer substitutions at every
/// committed jump and block fall-through. This turns the metatheory
/// (Progress, Preservation, No False Positives) into directly executable
/// checks: at any point, checkTyped() re-verifies ⊢Z S.
///
/// When the harness injects a fault (rules reg-zap / Q-zap), it sets the
/// run's zap tag to the corrupted color; the typing anchor then follows
/// the unzapped program counter, as in rule R-t.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_FAULT_TRACKEDRUN_H
#define TALFT_FAULT_TRACKEDRUN_H

#include "check/StateTyping.h"
#include "fault/FaultInjector.h"
#include "sim/Machine.h"

namespace talft {

/// Drives one execution of a checked program with typing tracking.
class TrackedRun {
public:
  TrackedRun(TypeContext &TC, const CheckedProgram &CP,
             StepPolicy Policy = StepPolicy())
      : TC(TC), CP(CP), Policy(Policy) {}

  /// Builds the initial state and closing substitution.
  Error start();

  MachineState &state() { return S; }
  const MachineState &state() const { return S; }
  const Subst &closing() const { return Closing; }
  ZapTag zapTag() const { return Z; }
  const OutputTrace &trace() const { return Trace; }
  uint64_t steps() const { return Steps; }

  /// True when the machine is about to fetch from the exit block.
  bool atExitBlock() const {
    return atExit(S, CP.Prog->exitAddress());
  }

  /// One transition, with substitution tracking.
  StepResult stepOnce();

  /// Applies a fault (a k=1 transition) and switches to the matching zap
  /// tag. Only one fault may be injected per run (the SEU model).
  void injectSingleFault(const FaultSite &Site, int64_t NewValue);

  /// Re-checks ⊢Z S for the current state.
  Error checkTyped() const { return checkStateTyped(TC, CP, S, Z, Closing); }

  /// A resumable copy of the run's dynamic state (used by the exhaustive
  /// fault sweep to branch one reference execution into many faulty
  /// continuations).
  struct Snapshot {
    MachineState S;
    Subst Closing;
    OutputTrace Trace;
    uint64_t Steps = 0;
  };

  Snapshot snapshot() const { return {S, Closing, Trace, Steps}; }

  /// Restores a snapshot and clears any zap tag / injection marker.
  void restore(const Snapshot &Snap) {
    S = Snap.S;
    Closing = Snap.Closing;
    Trace = Snap.Trace;
    Steps = Snap.Steps;
    Z = ZapTag::none();
    Injected = false;
  }

private:
  TypeContext &TC;
  const CheckedProgram &CP;
  StepPolicy Policy;
  MachineState S;
  Subst Closing;
  ZapTag Z = ZapTag::none();
  OutputTrace Trace;
  uint64_t Steps = 0;
  bool Injected = false;

  /// The instruction address typing is anchored at (the unzapped pc).
  Addr anchor() const {
    return Z.is(Color::Green) ? S.pcB().N : S.pcG().N;
  }
};

} // namespace talft

#endif // TALFT_FAULT_TRACKEDRUN_H
