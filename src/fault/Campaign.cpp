//===- fault/Campaign.cpp -------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "fault/Campaign.h"

#include "analysis/ZapCoverage.h"
#include "isa/ProgramHash.h"
#include "support/StringUtils.h"
#include "support/Unreachable.h"
#include "vm/JitEngine.h"
#include "vm/LaneEngine.h"
#include "vm/LaneSimd.h"
#include "vm/LaneState.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

using namespace talft;

const char *talft::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Masked:
    return "masked";
  case Verdict::Detected:
    return "detected";
  case Verdict::SilentCorruption:
    return "silent corruption";
  case Verdict::DissimilarState:
    return "dissimilar state";
  case Verdict::DetectedBadPrefix:
    return "detected (bad prefix)";
  case Verdict::BudgetExhausted:
    return "budget exhausted";
  case Verdict::Stuck:
    return "stuck";
  case Verdict::IllTyped:
    return "ill-typed";
  case Verdict::Recovered:
    return "recovered";
  case Verdict::RecoveryEscalated:
    return "recovery escalated";
  case Verdict::StaticallyMasked:
    return "statically masked";
  case Verdict::StaticallyDetected:
    return "statically detected";
  }
  talft_unreachable("unknown verdict");
}

const char *talft::verdictJsonKey(Verdict V) {
  switch (V) {
  case Verdict::Masked:
    return "masked";
  case Verdict::Detected:
    return "detected";
  case Verdict::SilentCorruption:
    return "silent_corruption";
  case Verdict::DissimilarState:
    return "dissimilar_state";
  case Verdict::DetectedBadPrefix:
    return "detected_bad_prefix";
  case Verdict::BudgetExhausted:
    return "budget_exhausted";
  case Verdict::Stuck:
    return "stuck";
  case Verdict::IllTyped:
    return "ill_typed";
  case Verdict::Recovered:
    return "recovered";
  case Verdict::RecoveryEscalated:
    return "recovery_escalated";
  case Verdict::StaticallyMasked:
    return "statically_masked";
  case Verdict::StaticallyDetected:
    return "statically_detected";
  }
  talft_unreachable("unknown verdict");
}

uint64_t VerdictTable::total() const {
  uint64_t N = 0;
  for (uint64_t C : Counts)
    N += C;
  return N;
}

uint64_t VerdictTable::benign() const {
  return (*this)[Verdict::Masked] + (*this)[Verdict::Detected] +
         (*this)[Verdict::Recovered] + (*this)[Verdict::RecoveryEscalated] +
         (*this)[Verdict::StaticallyMasked] +
         (*this)[Verdict::StaticallyDetected];
}

void VerdictTable::merge(const VerdictTable &O) {
  for (size_t I = 0; I != NumVerdicts; ++I) {
    uint64_t &C = Counts[I];
    C = (O.Counts[I] > UINT64_MAX - C) ? UINT64_MAX : C + O.Counts[I];
  }
}

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

bool isBenign(Verdict V) {
  return V == Verdict::Masked || V == Verdict::Detected ||
         V == Verdict::Recovered || V == Verdict::RecoveryEscalated ||
         V == Verdict::StaticallyMasked || V == Verdict::StaticallyDetected;
}

/// The violation text for an abnormal single-fault verdict, matching the
/// wording the serial checker has always produced.
const char *abnormalMessage(Verdict V) {
  switch (V) {
  case Verdict::SilentCorruption:
    return "completed with a DIFFERENT output trace (silent data corruption)";
  case Verdict::DissimilarState:
    return "completed but the final state is not similar to the reference "
           "final state";
  case Verdict::DetectedBadPrefix:
    return "detected, but the faulty output is not a prefix of the "
           "reference output";
  case Verdict::BudgetExhausted:
    return "faulty run exceeded its step budget without detection or "
           "completion";
  case Verdict::Stuck:
    return "faulty run got stuck";
  default:
    talft_unreachable("verdict has no violation message");
  }
}

std::string describeInjection(const FaultSite &Site, int64_t Value,
                              uint64_t AtStep, const char *What) {
  return formatv("inject %s := %lld at step %llu: %s", Site.str().c_str(),
                 (long long)Value, (unsigned long long)AtStep, What);
}

/// Runs \p RunOne over every index in [0, Total) across \p Threads workers.
/// Workers pull fixed-size chunks off an atomic cursor; because each task
/// writes only its own slot, the schedule cannot affect results.
void dispatchTasks(unsigned Threads, uint64_t Total,
                   const std::function<void(uint64_t)> &RunOne,
                   uint64_t ProgressInterval,
                   const std::function<void(const CampaignProgress &)> &Progress) {
  if (Total == 0)
    return;
  if (Threads == 0)
    Threads = std::max(1u, std::thread::hardware_concurrency());
  Threads = (unsigned)std::min<uint64_t>(Threads, Total);
  uint64_t Chunk =
      std::max<uint64_t>(1, std::min<uint64_t>(64, Total / (uint64_t(Threads) * 8)));

  std::atomic<uint64_t> Next{0};
  std::atomic<uint64_t> Completed{0};
  std::mutex ProgressMu;
  auto Work = [&] {
    while (true) {
      uint64_t Begin = Next.fetch_add(Chunk, std::memory_order_relaxed);
      if (Begin >= Total)
        return;
      uint64_t End = std::min(Total, Begin + Chunk);
      for (uint64_t I = Begin; I != End; ++I)
        RunOne(I);
      uint64_t Prev = Completed.fetch_add(End - Begin, std::memory_order_acq_rel);
      uint64_t Done = Prev + (End - Begin);
      if (Progress && ProgressInterval &&
          (Done == Total || Done / ProgressInterval != Prev / ProgressInterval)) {
        std::lock_guard<std::mutex> Lock(ProgressMu);
        Progress({Done, Total});
      }
    }
  };

  if (Threads == 1) {
    Work();
    return;
  }
  std::vector<std::thread> Pool;
  Pool.reserve(Threads - 1);
  for (unsigned T = 0; T + 1 < Threads; ++T)
    Pool.emplace_back(Work);
  Work();
  for (std::thread &Th : Pool)
    Th.join();
}

/// Registers the program mentions anywhere, plus the specials.
std::set<unsigned> mentionedRegisters(const Program &Prog) {
  std::set<unsigned> Used;
  for (const Block &B : Prog.blocks()) {
    for (const ProgInst &PI : B.Insts) {
      const Inst &I = PI.I;
      Used.insert(I.Rd.denseIndex());
      Used.insert(I.Rs.denseIndex());
      if (!I.HasImm)
        Used.insert(I.Rt.denseIndex());
    }
  }
  Used.insert(Reg::dest().denseIndex());
  Used.insert(Reg::pcG().denseIndex());
  Used.insert(Reg::pcB().denseIndex());
  return Used;
}

/// The reference state at one injection step, without typing bookkeeping.
struct UntypedSnapshot {
  MachineState S;
  uint64_t Steps = 0;
  size_t TraceLen = 0;
};

/// One (step, site, corruption) triple of the work list.
struct InjectionTask {
  uint32_t SnapIdx = 0;
  FaultSite Site;
  int64_t Value = 0;
};

/// Tracks whether a faulty run's outputs are still the prefix
/// RefTrace[0, MatchPos): one mismatched output makes both the prefix and
/// equality checks fail forever, so no faulty trace needs materializing.
struct PrefixTracker {
  const OutputTrace &RefTrace;
  size_t MatchPos;
  bool Diverged = false;

  void track(const QueueEntry &Out) {
    if (!Diverged && MatchPos < RefTrace.size() && Out == RefTrace[MatchPos])
      ++MatchPos;
    else
      Diverged = true;
  }
};

/// Phase-1 record of which reference transitions may touch each register.
/// Transition k (1-based: the step that produces reference state k) is
/// recorded against a *superset* of the registers whose payload or color
/// can influence its behavior or be written by it: the executed
/// instruction's named operands, plus d for control flow (jmp and bz read
/// and write it). Fetch transitions read only the pcs, which every
/// execute transition also touches (incrementPCs or an explicit set), so
/// the pcs are treated as always-accessed instead of being recorded.
/// Over-approximating the access set only shrinks the skippable prefix;
/// missing a genuine access would be unsound, so the superset property is
/// what the forced-collision and differential tests pin down.
struct AccessLog {
  static constexpr uint64_t None = ~uint64_t{0};
  std::array<std::vector<uint64_t>, Reg::NumRegs> Access;

  void record(Reg R, uint64_t K) {
    std::vector<uint64_t> &V = Access[R.denseIndex()];
    if (V.empty() || V.back() != K)
      V.push_back(K);
  }

  /// Records transition \p K given the pre-step state \p S.
  void recordTransition(const MachineState &S, uint64_t K) {
    if (!S.IR)
      return; // fetch reads only the (always-accessed) pcs
    const Inst &I = *S.IR;
    record(I.Rd, K);
    record(I.Rs, K);
    if (!I.HasImm)
      record(I.Rt, K);
    if (I.Op == Opcode::Jmp || I.Op == Opcode::Bz)
      record(Reg::dest(), K);
  }

  /// First transition index > \p Step that may access \p R, or None when
  /// the reference never touches it again. The pcs are read by the very
  /// next transition, whatever it is.
  uint64_t firstAccessAfter(Reg R, uint64_t Step) const {
    if (R.isPC())
      return Step + 1;
    const std::vector<uint64_t> &V = Access[R.denseIndex()];
    auto It = std::upper_bound(V.begin(), V.end(), Step);
    return It == V.end() ? None : *It;
  }
};

/// Phase-1 record of one executed reference instruction with its read
/// operand values and its result, the raw material of the sparse
/// differential replay. Fetch and execute transitions strictly alternate
/// (step() fetches into the empty IR, executing resets it), so execute
/// transitions are exactly the even step indices and the record of
/// execute step k lives at index k/2 - 1.
struct ExecRec {
  Inst I;
  /// Pre-step val(Rs) — the ALU first operand, the Ld/St address/value
  /// source, or the Bz test register (rz == Rs).
  int64_t SrcRs = 0;
  /// Pre-step val(Rt), or the immediate payload under HasImm.
  int64_t SrcRt = 0;
  /// Post-step val(Rd) (the written result for Alu/Mov/Ld; stale
  /// otherwise).
  int64_t Result = 0;
};

/// Everything the convergence machinery needs: the per-step fingerprint
/// timeline of the reference run, dense snapshots to reconstruct an
/// arbitrary reference state from (Snaps[k].Steps == k * Stride by
/// construction), the register access log and the recorded instruction
/// stream driving the differential replay (null in plan campaigns, whose
/// earlier injections already diverged the state).
struct ConvergenceContext {
  const std::vector<uint64_t> *Timeline = nullptr;
  const std::vector<UntypedSnapshot> *Snaps = nullptr;
  uint64_t Stride = 1;
  const AccessLog *Accesses = nullptr;
  const std::vector<ExecRec> *Execs = nullptr;
};

/// Probe only every 16th fetch boundary (ExecEngine::ConvergenceProbe's
/// Mask). Thinning the probe is verdict-neutral (see the struct's doc);
/// it exists because the fingerprint compose and timeline load are pure
/// overhead on continuations that never converge, which dominate the
/// detect-heavy kernels.
constexpr uint64_t ProbeMask = 15;

/// The faulty payloads of a differential replay: (dense register index,
/// value) pairs for exactly the registers whose payload differs from the
/// reference. Taint never touches color tags (injectFault preserves them
/// and instruction results take their colors from operand colors, which
/// are payload-independent), so "reference state with these payloads
/// patched in" describes the faulty state completely. The set stays tiny
/// (usually one to three registers), so linear scans beat any map.
struct TaintMap {
  std::vector<std::pair<unsigned, int64_t>> V;

  const int64_t *find(unsigned R) const {
    for (const auto &P : V)
      if (P.first == R)
        return &P.second;
    return nullptr;
  }
  void set(unsigned R, int64_t Val) {
    for (auto &P : V)
      if (P.first == R) {
        P.second = Val;
        return;
      }
    V.push_back({R, Val});
  }
  void erase(unsigned R) {
    for (size_t I = 0; I != V.size(); ++I)
      if (V[I].first == R) {
        V[I] = V.back();
        V.pop_back();
        return;
      }
  }
  bool empty() const { return V.empty(); }
};

/// Writes the taint payloads into \p S, keeping every color tag.
void patchTaint(MachineState &S, const TaintMap &T) {
  for (const auto &P : T.V) {
    Reg R = Reg::fromDenseIndex(P.first);
    Value V = S.Regs.get(R);
    V.N = P.second;
    S.Regs.set(R, V);
  }
}

/// One task's convergence outcome, written by classifyContinuation and
/// merged deterministically after the parallel phase.
struct ConvergenceHit {
  bool Hit = false;
  uint64_t Window = 0; ///< Steps from injection to the convergence point.
  uint64_t Saved = 0;  ///< Reference-tail steps skipped by the early exit.
  uint64_t Skipped = 0; ///< Lockstep-prefix steps discharged unsimulated.
};

/// Phase-1 collector for the convergence machinery: the per-step
/// fingerprint timeline, the register access log, and the dense
/// reconstruction snapshots. The snapshot stride starts small and doubles
/// (dropping the odd-indexed half) whenever the cap is hit, bounding
/// memory at MaxSnaps states while preserving the indexing invariant
/// Snaps[k].Steps == k * Stride.
struct ConvergenceRecorder {
  bool Enabled = false;
  std::vector<uint64_t> Timeline;
  AccessLog Accesses;
  std::vector<ExecRec> Execs;
  std::vector<UntypedSnapshot> Snaps;
  uint64_t Stride = 16;
  static constexpr size_t MaxSnaps = 512;

  void start(const MachineState &S) {
    if (!Enabled)
      return;
    Timeline.push_back(S.fingerprint());
    Snaps.push_back({S, 0, 0});
  }

  /// Call with the pre-step state; \p NextStep is the 1-based index of the
  /// transition about to execute.
  void beforeStep(const MachineState &S, uint64_t NextStep) {
    if (!Enabled)
      return;
    Accesses.recordTransition(S, NextStep);
    if (!S.IR)
      return;
    assert(NextStep == 2 * (Execs.size() + 1) &&
           "fetch/execute alternation broken");
    const Inst &I = *S.IR;
    ExecRec Rec;
    Rec.I = I;
    Rec.SrcRs = S.Regs.val(I.Rs);
    Rec.SrcRt = I.HasImm ? I.Imm.N : S.Regs.val(I.Rt);
    Execs.push_back(Rec);
  }

  void afterStep(const MachineState &S, uint64_t Steps, size_t TraceLen) {
    if (!Enabled)
      return;
    // Execute transitions are the even steps; patch the freshly executed
    // record with the written result (post-step val(Rd)).
    if ((Steps & 1) == 0 && !Execs.empty())
      Execs.back().Result = S.Regs.val(Execs.back().I.Rd);
    Timeline.push_back(S.fingerprint());
    if (Steps % Stride)
      return;
    if (Snaps.size() >= MaxSnaps) {
      size_t W = 0;
      for (size_t I = 0; I < Snaps.size(); I += 2)
        Snaps[W++] = std::move(Snaps[I]);
      Snaps.resize(W);
      Stride *= 2;
      if (Steps % Stride)
        return;
    }
    Snaps.push_back({S, Steps, TraceLen});
  }
};

/// Sparse differential replay of one register-site continuation against
/// the recorded reference instruction stream: the big accelerator for
/// runs that never re-join the reference (long-latency Detected runs and
/// color-divergent Masked runs), which full-state simulation can only
/// classify step by step.
///
/// The soundness backbone is *structural lockstep*: as long as every
/// register payload that differs from the reference is confined to the
/// TaintMap, the faulty run executes exactly the reference's instruction
/// sequence. Fetches read only the (untainted) pcs; memory changes only
/// through stB commits, and a commit whose inputs are tainted is never
/// reached differentially (its stG or stB is an event that bails first),
/// so memory and queue stay reference-equal throughout; similarly a
/// control transition with tainted inputs bails. Every transition whose
/// accessed registers are all untainted therefore reads reference values,
/// fires the reference rule, writes reference values and emits the
/// reference outputs — only the *events*, the transitions the access log
/// says may touch a tainted register, need attention:
///
///   - alu: the faulty result is evalAluOp over the recorded source
///     values with taint overrides; equal to the recorded result it
///     kills the Rd taint, different it retaints Rd;
///   - mov: Rd takes the immediate — the reference result — killing Rd's
///     taint unconditionally;
///   - ld with an untainted address: reads reference-equal memory (and,
///     for ldG, a reference-equal queue), so Rd gets the reference
///     result, killing its taint; a tainted address bails;
///   - bz whose target and d are untainted and whose faulty test value
///     agrees with the reference direction (both fall through): no
///     register writes, taint unchanged; any disagreement bails;
///   - everything else (st, jmp, tainted control inputs) bails to the
///     concrete classifier.
///
/// Three ways out, all verdict-exact against the full simulation:
///
///   - the taint set empties: the faulty state now equals the reference
///     state exactly, so the remainder is the reference tail — Masked;
///   - no tainted register is ever accessed again: the run is lockstep
///     to the halt, the trace completes, and the final state is RefFinal
///     with the taint patched in — only the similarity check remains;
///   - bail: the reference state just before the event is reconstructed
///     from the dense snapshots, the taint payloads are patched in (that
///     IS the faulty state there, by the invariant), and nullopt tells
///     the caller to classify concretely from that point with \p S,
///     \p AtSteps and \p TraceLen repositioned and the fault already in
///     place. With \p DB (the batched lane path) the bail instead leaves
///     \p S, \p AtSteps and \p TraceLen untouched and reports the resume
///     step and the taint map through \p DB: the bail step depends only
///     on the taint *set*, not the corrupted payloads, so every value
///     zapped into the same site bails at the same event — the caller
///     pools those continuations, reconstructs their shared base state
///     once and patches each lane's taint in.
///
/// Event processing costs an order of magnitude more than one raw
/// interpreter step, so a run whose taint is touched at nearly every
/// instruction caps its event count and bails instead of losing the race.
struct DeferredBail {
  /// Absolute reference step to resume from (post-fetch: the event
  /// instruction is in flight there and re-executes for real).
  uint64_t Resume = 0;
  /// The register payloads that differ from the reference at Resume.
  TaintMap Taint;
};

std::optional<Verdict>
differentialReplay(const ExecEngine &E, const StepPolicy &Policy,
                   const ConvergenceContext &Conv, const FaultSite &Site,
                   int64_t Value, const MachineState &RefFinal,
                   uint64_t RefSteps, ZapTag Z, MachineState &S,
                   uint64_t &AtSteps, size_t &TraceLen, ConvergenceHit *Hit,
                   DeferredBail *DB = nullptr) {
  const AccessLog &AL = *Conv.Accesses;
  const std::vector<ExecRec> &Execs = *Conv.Execs;
  const uint64_t InjectedAt = AtSteps;
  TaintMap T;
  T.set(Site.R.denseIndex(), Value);

  uint64_t Cur = AtSteps;
  uint64_t Events = 0;
  uint64_t Bail = 0;
  while (true) {
    // The next reference transition that may touch any tainted register.
    uint64_t K = AccessLog::None;
    for (const auto &P : T.V)
      K = std::min(K, AL.firstAccessAfter(Reg::fromDenseIndex(P.first), Cur));
    if (K == AccessLog::None) {
      if (Hit)
        Hit->Skipped = RefSteps - InjectedAt;
      // The faulty final state is RefFinal with the taint payloads patched
      // in — identical everywhere else — so the similarity check reduces
      // to the tainted registers; no state copy needed.
      if (RefFinal.isFault())
        return Verdict::Masked;
      for (const auto &P : T.V) {
        talft::Value RefV = RefFinal.Regs.get(Reg::fromDenseIndex(P.first));
        if (!similarValues(Z, talft::Value(RefV.C, P.second), RefV))
          return Verdict::DissimilarState;
      }
      return Verdict::Masked;
    }
    assert((K & 1) == 0 && K / 2 <= Execs.size() &&
           "event is not a recorded execute transition");
    // Progress gate: an event costs several interpreter steps, so the
    // replay only pays off while events stay sparse. Dense taint (many
    // hot registers) discharges few steps per event; hand such runs to
    // the concrete classifier before the bookkeeping loses the race.
    if (++Events >= 32 && K - InjectedAt < 8 * Events) {
      Bail = K;
      break;
    }
    const ExecRec &Rec = Execs[K / 2 - 1];
    const Inst &I = Rec.I;
    bool Handled = true;
    switch (I.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul: {
      const int64_t *TA = T.find(I.Rs.denseIndex());
      int64_t A = TA ? *TA : Rec.SrcRs;
      int64_t B = Rec.SrcRt;
      if (!I.HasImm)
        if (const int64_t *TB = T.find(I.Rt.denseIndex()))
          B = *TB;
      int64_t R = evalAluOp(I.Op, A, B);
      if (R == Rec.Result)
        T.erase(I.Rd.denseIndex());
      else
        T.set(I.Rd.denseIndex(), R);
      break;
    }
    case Opcode::Mov:
      T.erase(I.Rd.denseIndex());
      break;
    case Opcode::Ld:
      if (T.find(I.Rs.denseIndex()))
        Handled = false;
      else
        T.erase(I.Rd.denseIndex());
      break;
    case Opcode::Bz: {
      if (T.find(I.Rd.denseIndex()) || T.find(Reg::dest().denseIndex())) {
        Handled = false;
        break;
      }
      const int64_t *TZ = T.find(I.Rs.denseIndex());
      int64_t Zf = TZ ? *TZ : Rec.SrcRs;
      if ((Zf == 0) != (Rec.SrcRs == 0) || Zf == 0)
        Handled = false; // direction differs (or, defensively, taken)
      break;
    }
    default:
      Handled = false; // st, jmp: hand over to the concrete classifier
      break;
    }
    if (!Handled) {
      Bail = K;
      break;
    }
    Cur = K;
    if (T.empty()) {
      if (Hit) {
        Hit->Hit = true;
        Hit->Window = K - InjectedAt;
        Hit->Saved = RefSteps - K;
        Hit->Skipped = K - InjectedAt;
      }
      return Verdict::Masked;
    }
  }

  // Bail: resume concretely just before the event (post-fetch, so the
  // event instruction re-executes for real). A short discharged prefix is
  // cheaper to re-simulate than to reconstruct from a snapshot.
  if (DB) {
    DB->Resume = Bail - 1;
    DB->Taint = std::move(T);
    return std::nullopt;
  }
  uint64_t Resume = Bail - 1;
  if (Resume > InjectedAt + 64) {
    const UntypedSnapshot &Base = (*Conv.Snaps)[Resume / Conv.Stride];
    assert(Base.Steps <= Resume && "snapshot stride invariant violated");
    MachineState Ref = Base.S;
    OutputTrace Replayed;
    E.replaySteps(Ref, Resume - Base.Steps, Replayed, Policy);
    S = std::move(Ref);
    TraceLen = Base.TraceLen + Replayed.size();
    AtSteps = Resume;
    if (Hit)
      Hit->Skipped = Resume - InjectedAt;
    patchTaint(S, T);
  } else {
    injectFault(S, Site, Value);
  }
  return std::nullopt;
}

/// Maps a finished continuation's RunStatus to its verdict — the single
/// source of truth shared by the scalar classifier and the batched lane
/// path, so the two can never drift. Only the Halted case consults the
/// final state; Converged was already proven Masked by the probe's Verify.
Verdict verdictForStatus(RunStatus St, const PrefixTracker &Prefix,
                         const OutputTrace &RefTrace, ZapTag Z,
                         const MachineState &S, const MachineState &RefFinal) {
  switch (St) {
  case RunStatus::OutOfSteps:
    return Verdict::BudgetExhausted;
  case RunStatus::Stuck:
    return Verdict::Stuck;
  case RunStatus::FaultDetected:
    return Prefix.Diverged ? Verdict::DetectedBadPrefix : Verdict::Detected;
  case RunStatus::Converged:
    return Verdict::Masked;
  case RunStatus::Halted:
    break;
  }
  if (Prefix.Diverged || Prefix.MatchPos != RefTrace.size())
    return Verdict::SilentCorruption;
  if (!similarStates(Z, S, RefFinal))
    return Verdict::DissimilarState;
  return Verdict::Masked;
}

/// Classifies one faulty continuation on the raw semantics via \p E. \p S
/// is the reference state at the injection step; \p TraceLen the reference
/// trace length there. The engine's runContinuation reproduces the serial
/// checker's control flow exactly (exit check before budget check) so
/// verdicts agree bit-for-bit with the historical classifier — and, since
/// engines are observationally identical, for every engine.
///
/// With \p Conv, the differential replay above tries to discharge the run
/// first; what it cannot discharge is simulated concretely, with fetch
/// boundaries probing for re-convergence: a fingerprint match at step
/// index Idx gates a reconstruction of the reference state at Idx
/// (nearest snapshot + replay) and a full state-equality check. When the
/// states are exactly equal, the outputs so far are exactly the reference
/// prefix at Idx and the tracker never diverged, determinism makes the
/// rest of the run identical to the reference tail: it halts, completes
/// the reference trace and lands in the reference final state — which
/// similarStates accepts reflexively — so the full run's verdict would be
/// Masked. Hence RunStatus::Converged maps to Verdict::Masked with the
/// remaining RefSteps - Idx transitions skipped, and the accelerated
/// table folds bit-identically onto the baseline. (The budget never cuts
/// a converged run short of what the probe proves: remaining budget at
/// Idx is RefSteps - Idx + ExtraSteps, and the exit check runs before the
/// budget check.)
Verdict classifyContinuation(const ExecEngine &E, Addr ExitAddr,
                             const StepPolicy &Policy, uint64_t ExtraSteps,
                             const OutputTrace &RefTrace,
                             const MachineState &RefFinal, uint64_t RefSteps,
                             MachineState S, uint64_t AtSteps, size_t TraceLen,
                             const FaultSite &Site, int64_t Value,
                             const ConvergenceContext *Conv = nullptr,
                             ConvergenceHit *Hit = nullptr) {
  ZapTag Z = ZapTag::color(faultColor(S, Site));
  uint64_t InjectedAt = AtSteps;

  if (Conv && Conv->Accesses && Conv->Execs && !Conv->Execs->empty() &&
      Site.K == FaultSite::Kind::Register && !Site.R.isPC()) {
    // pc sites are accessed by the very next transition, so the replay
    // cannot discharge anything for them; everything else goes through
    // the differential engine, which either returns the final verdict or
    // repositions S/AtSteps/TraceLen with the taint already injected.
    if (std::optional<Verdict> V =
            differentialReplay(E, Policy, *Conv, Site, Value, RefFinal,
                               RefSteps, Z, S, AtSteps, TraceLen, Hit))
      return *V;
  } else {
    injectFault(S, Site, Value);
  }

  uint64_t Budget = RefSteps - AtSteps + ExtraSteps;
  PrefixTracker Prefix{RefTrace, TraceLen};

  ExecEngine::ConvergenceProbe Probe;
  const ExecEngine::ConvergenceProbe *ProbePtr = nullptr;
  uint64_t ConvIdx = 0;
  if (Conv) {
    Probe.Timeline = Conv->Timeline->data();
    Probe.Size = Conv->Timeline->size();
    Probe.StartStep = AtSteps;
    Probe.Mask = ProbeMask;
    Probe.Verify = [&](const MachineState &FS, uint64_t Idx) {
      // A diverged output can never fold into Masked; let the run finish
      // and classify naturally.
      if (Prefix.Diverged)
        return false;
      // Reconstruct the reference state at Idx from the nearest snapshot
      // at or below it; counting the replay's outputs also recovers the
      // reference trace length at Idx.
      const UntypedSnapshot &Base = (*Conv->Snaps)[Idx / Conv->Stride];
      assert(Base.Steps <= Idx && "snapshot stride invariant violated");
      MachineState Ref = Base.S;
      OutputTrace Replayed;
      E.replaySteps(Ref, Idx - Base.Steps, Replayed, Policy);
      if (Prefix.MatchPos != Base.TraceLen + Replayed.size())
        return false;
      if (!(FS == Ref))
        return false; // fingerprint collision — the guard held
      ConvIdx = Idx;
      return true;
    };
    ProbePtr = &Probe;
  }

  RunStatus St = E.runContinuation(
      S, ExitAddr, Budget, Policy,
      [&Prefix](const QueueEntry &Out) { Prefix.track(Out); }, ProbePtr);

  if (St == RunStatus::Converged && Hit) {
    Hit->Hit = true;
    // The window is measured from the injection, not the skip's resume
    // point: the skipped prefix is part of the divergence window even
    // though it was never simulated.
    Hit->Window = ConvIdx - InjectedAt;
    Hit->Saved = RefSteps - ConvIdx;
  }
  return verdictForStatus(St, Prefix, RefTrace, Z, S, RefFinal);
}

/// Outcome of one injection under recovery: a verdict, the violation text
/// when non-empty, and the run's checkpoint/rollback activity.
struct RecoveredOutcome {
  Verdict V = Verdict::Masked;
  std::string Detail;
  RecoveryStats Stats;
};

/// The recovery-mode classifier: same injection, but the continuation
/// runs under the checkpoint/rollback layer. The fault is injected by the
/// step hook at hook time 0, after the RecoveringEngine has captured the
/// pre-injection state as its seed checkpoint — the last commit point the
/// hardware verified before the upset.
RecoveredOutcome classifyRecoveringContinuation(
    const ExecEngine &E, Addr ExitAddr, const StepPolicy &Policy,
    const RecoveryPolicy &RP, uint64_t ExtraSteps, const OutputTrace &RefTrace,
    const MachineState &RefFinal, uint64_t RefSteps, MachineState S,
    uint64_t AtSteps, size_t TraceLen, const FaultSite &Site, int64_t Value) {
  RecoveredOutcome O;
  ZapTag Z = ZapTag::color(faultColor(S, Site));

  PrefixTracker Prefix{RefTrace, TraceLen};
  RecoveringEngine RE(E, RP);
  RecoveringEngine::RunSpec Spec;
  Spec.ExitAddr = ExitAddr;
  Spec.Budget = RefSteps - AtSteps + ExtraSteps;
  Spec.Policy = Policy;
  Spec.OnOutput = [&Prefix](const QueueEntry &Out) { Prefix.track(Out); };
  Spec.Hook = [&Site, Value](MachineState &MS, uint64_t Taken) {
    if (Taken == 0)
      injectFault(MS, Site, Value);
  };
  RecoveryResult RR = RE.run(S, Spec);
  O.Stats = RR.Stats;

  auto Abnormal = [&](Verdict V) {
    O.V = V;
    O.Detail = describeInjection(Site, Value, AtSteps, abnormalMessage(V));
  };
  bool PrefixOk = !Prefix.Diverged;
  switch (RR.Status) {
  case RecoveryStatus::OutOfSteps:
    // Satellite fix: the step budget is shared by rollback replays, so
    // exhausting it mid-recovery is an escalation with its own message,
    // not a plain BudgetExhausted.
    if (RR.Stats.Rollbacks > 0) {
      O.V = Verdict::RecoveryEscalated;
      O.Detail = describeInjection(
          Site, Value, AtSteps,
          formatv("faulty run exceeded its shared step budget during "
                  "recovery (%llu rollback replay%s); escalated to fail-stop",
                  (unsigned long long)RR.Stats.Rollbacks,
                  RR.Stats.Rollbacks == 1 ? "" : "s")
              .c_str());
    } else {
      Abnormal(Verdict::BudgetExhausted);
    }
    return O;
  case RecoveryStatus::Stuck:
    Abnormal(Verdict::Stuck);
    return O;
  case RecoveryStatus::Escalated:
    // Fail-stop with every emitted output verified: the prefix guarantee
    // holds and the escalation is benign. A diverged prefix is the same
    // violation it always was.
    if (PrefixOk)
      O.V = Verdict::RecoveryEscalated;
    else
      Abnormal(Verdict::DetectedBadPrefix);
    return O;
  case RecoveryStatus::Halted:
    break;
  }

  if (Prefix.Diverged || Prefix.MatchPos != RefTrace.size()) {
    Abnormal(Verdict::SilentCorruption);
    return O;
  }
  if (!similarStates(Z, S, RefFinal)) {
    Abnormal(Verdict::DissimilarState);
    return O;
  }
  O.V = RR.Stats.Rollbacks > 0 ? Verdict::Recovered : Verdict::Masked;
  return O;
}

/// Outcome of one typed-mode injection (serial path).
struct TypedOutcome {
  Verdict V = Verdict::Masked;
  std::string Detail;
  uint64_t Typechecked = 0;
};

/// The typed-mode continuation: identical classification, but every state
/// (strided) is re-typed under the corrupted color's zap tag (Theorem 2
/// part 2). Runs through TrackedRun and the shared TypeContext, hence
/// serial-only.
TypedOutcome runTypedInjection(const TheoremConfig &Config, TrackedRun &Run,
                               const TrackedRun::Snapshot &At,
                               const FaultSite &Site, int64_t Corruption,
                               const TrackedRun::Snapshot &RefFinal,
                               const OutputTrace &RefTrace) {
  TypedOutcome O;
  Run.restore(At);
  Run.injectSingleFault(Site, Corruption);

  auto Fail = [&](Verdict V, const char *What) {
    O.V = V;
    O.Detail = describeInjection(Site, Corruption, At.Steps, What);
  };

  uint64_t TypeStride = std::max<uint64_t>(1, Config.FaultyTypeCheckStride);
  uint64_t Budget = RefFinal.Steps - At.Steps + Config.ExtraSteps;
  uint64_t Taken = 0;
  uint64_t SinceInjection = 0;
  while (true) {
    if (SinceInjection % TypeStride == 0) {
      if (Error E = Run.checkTyped()) {
        Fail(Verdict::IllTyped,
             ("faulty state not well-typed: " + E.message()).c_str());
        return O;
      }
      ++O.Typechecked;
    }
    if (Run.atExitBlock())
      break;
    if (Taken >= Budget) {
      Fail(Verdict::BudgetExhausted, abnormalMessage(Verdict::BudgetExhausted));
      return O;
    }
    StepResult SR = Run.stepOnce();
    ++Taken;
    ++SinceInjection;
    if (SR.Status == StepStatus::Stuck) {
      Fail(Verdict::Stuck, abnormalMessage(Verdict::Stuck));
      return O;
    }
    if (SR.Status == StepStatus::Fault) {
      if (isTracePrefix(Run.trace(), RefTrace)) {
        O.V = Verdict::Detected;
      } else {
        Fail(Verdict::DetectedBadPrefix,
             abnormalMessage(Verdict::DetectedBadPrefix));
      }
      return O;
    }
  }

  if (!(Run.trace() == RefTrace)) {
    Fail(Verdict::SilentCorruption, abnormalMessage(Verdict::SilentCorruption));
    return O;
  }
  if (!similarStates(Run.zapTag(), Run.state(), RefFinal.S)) {
    Fail(Verdict::DissimilarState, abnormalMessage(Verdict::DissimilarState));
    return O;
  }
  O.V = Verdict::Masked;
  return O;
}

/// Builds the static pruning oracle when the caller asked for one and the
/// analysis can vouch for the program (fully resolved CFG). Analysis
/// failures quietly fall back to the unpruned sweep — pruning is an
/// optimization, never a requirement.
std::optional<analysis::ZapCoverage>
buildPruneOracle(const Program &Prog, const CampaignOptions &Opts) {
  if (!Opts.Prune)
    return std::nullopt;
  Expected<analysis::ZapCoverage> Z = analysis::ZapCoverage::compute(Prog);
  if (!Z || !Z->pruneSound())
    return std::nullopt;
  return std::move(*Z);
}

/// Builds the CFI target table for --cfi-check campaigns: every commit's
/// per-jump resolved set, whatever its provenance — validating the
/// type-narrowed sets dynamically is the point. Analysis failures quietly
/// disable checking (the table is a soundness oracle, not a requirement).
std::unique_ptr<CfiTable> buildCfiTable(const Program &Prog,
                                        const CampaignOptions &Opts) {
  if (!Opts.CfiCheck)
    return nullptr;
  Expected<analysis::CFG> G = analysis::CFG::build(Prog);
  if (!G)
    return nullptr;
  auto Table = std::make_unique<CfiTable>(G->minAddr(), G->numInsts());
  for (Addr A = G->minAddr(); A != G->limitAddr(); ++A) {
    if (!G->isCommit(A))
      continue;
    const std::vector<Addr> &Targets = G->controlTargets(A);
    Table->setAllowed(A, std::vector<int64_t>(Targets.begin(), Targets.end()));
  }
  return Table;
}

/// Phase 2: the full work list in the order the serial checker visits it,
/// so merged violation lists match it exactly. \p StateAt resolves the
/// reference state of snapshot \p SI (typed and untyped campaigns store
/// snapshots differently). With \p Prune, provably-dead register sites are
/// tallied into \p Table as StaticallyMasked instead of being enumerated —
/// exactly the triples the unpruned sweep would have classified, so the
/// table total is invariant under pruning.
///
/// A non-null \p CtrlAhead ("some control instruction executes at or after
/// this snapshot in the reference run", per snapshot) additionally arms
/// the control-register discharge, which the caller enables only when the
/// oracle vouches that the specials appear in control positions alone
/// (ZapCoverage::specialSiteDischargeSound), the campaign is untyped and
/// recovery-free, and ExtraSteps covers the predicted fault. The rules
/// mirror the dynamic classifier exactly:
///
///   d-zap — no non-control instruction can read or write d, so the
///   corrupted value survives verbatim until the next control executes,
///   where the d-protocol compares it (jmpG/bz demand d = 0; jmpB/bzB
///   demand d equal to the blue replica): with a control ahead the faulty
///   run faults on a reference-prefix trace (Detected); with none the run
///   replays the reference and ends similar modulo the green d (Masked).
///
///   pc-zap — the pcs are equal at every snapshot boundary, so corrupting
///   one desynchronizes them and the next fetch faults (Detected) —
///   unless the in-flight instruction is a committing blue control about
///   to succeed (it must: the reference completed), which overwrites both
///   pcs with the verified target and reproduces the reference state
///   exactly (Masked).
std::vector<InjectionTask>
enumerateTasks(const Program &Prog, const TheoremConfig &Config,
               size_t NumSnaps,
               const std::function<const MachineState &(size_t)> &StateAt,
               const analysis::ZapCoverage *Prune, VerdictTable &Table,
               const std::vector<uint8_t> *CtrlAhead = nullptr) {
  std::set<unsigned> UsedRegs;
  if (Config.OnlyMentionedRegisters)
    UsedRegs = mentionedRegisters(Prog);
  std::vector<int64_t> Corruptions = representativeCorruptions(Prog);

  std::vector<InjectionTask> Tasks;
  for (size_t SI = 0; SI != NumSnaps; ++SI) {
    const MachineState &S = StateAt(SI);
    // The pcs are only bumped when the next rule fires, so pcG's payload
    // is the address of the instruction the next transition executes —
    // whether or not it is already fetched into IR.
    Addr Here = S.pcG().N;
    for (const FaultSite &Site : enumerateFaultSites(S)) {
      if (Config.OnlyMentionedRegisters &&
          Site.K == FaultSite::Kind::Register &&
          !UsedRegs.count(Site.R.denseIndex()))
        continue;
      int64_t Current = currentValueAt(S, Site);
      if (Prune && Site.K == FaultSite::Kind::Register &&
          Prune->deadRegisterSite(Here, Site.R)) {
        for (int64_t Corruption : Corruptions)
          if (Corruption != Current)
            ++Table[Verdict::StaticallyMasked];
        continue;
      }
      if (Prune && CtrlAhead && Site.K == FaultSite::Kind::Register &&
          (Site.R.isDest() || Site.R.isPC())) {
        Verdict V;
        if (Site.R.isDest()) {
          V = (*CtrlAhead)[SI] ? Verdict::StaticallyDetected
                               : Verdict::StaticallyMasked;
        } else {
          bool CommitInFlight =
              S.IR && S.IR->isControlFlow() && S.IR->C == Color::Blue &&
              (S.IR->Op == Opcode::Jmp || S.Regs.val(S.IR->rz()) == 0);
          V = CommitInFlight ? Verdict::StaticallyMasked
                             : Verdict::StaticallyDetected;
        }
        for (int64_t Corruption : Corruptions)
          if (Corruption != Current)
            ++Table[V];
        continue;
      }
      for (int64_t Corruption : Corruptions) {
        if (Corruption == Current)
          continue; // reg-zap replaces the value with a *different* one.
        Tasks.push_back({(uint32_t)SI, Site, Corruption});
      }
    }
  }
  return Tasks;
}

/// Replaces \p Tasks with the contiguous slice the requested shard covers
/// ([I*T/N, (I+1)*T/N) of the T enumerated tasks) and records the shard
/// provenance in \p R. Enumeration is deterministic and tasks classify
/// independently, so folding the N shard results in index order
/// (foldShardResult) reproduces the unsharded campaign bit for bit.
/// Returns false (with a campaign-level violation) on an out-of-range
/// shard index.
bool applyShardSlice(const CampaignOptions &Opts, const TheoremConfig &Config,
                     std::vector<InjectionTask> &Tasks, CampaignResult &R) {
  unsigned Count = std::max(1u, Opts.ShardCount);
  R.Stats.ShardCount = Count;
  R.Stats.ShardIndex = Opts.ShardIndex;
  R.Stats.TotalTasks = Tasks.size();
  if (Count == 1 && Opts.ShardIndex == 0)
    return true;
  if (Opts.ShardIndex >= Count) {
    R.Ok = false;
    if (R.Violations.size() < Config.MaxViolations)
      R.Violations.push_back(formatv("shard index %u out of range for %u "
                                     "shard(s)",
                                     Opts.ShardIndex, Count));
    Tasks.clear();
    return false;
  }
  uint64_t T = Tasks.size();
  uint64_t Lo = T * Opts.ShardIndex / Count;
  uint64_t Hi = T * (uint64_t)(Opts.ShardIndex + 1) / Count;
  R.Stats.ShardFirstTask = Lo;
  // Statically pruned sites are tallied during enumeration, which every
  // shard repeats; assign them to shard 0 alone so the N shard tables sum
  // to the unsharded table exactly.
  if (Opts.ShardIndex != 0) {
    R.Table[Verdict::StaticallyMasked] = 0;
    R.Table[Verdict::StaticallyDetected] = 0;
  }
  Tasks.erase(Tasks.begin() + (ptrdiff_t)Hi, Tasks.end());
  Tasks.erase(Tasks.begin(), Tasks.begin() + (ptrdiff_t)Lo);
  return true;
}

/// Phase 3, untyped: classifies every task in parallel on the raw
/// semantics — with or without the recovery layer — and merges verdicts,
/// violations and recovery stats into \p R deterministically. A non-empty
/// \p Timeline (per-step reference fingerprints, recorded by phase 1 when
/// convergence is on) arms the early-exit probe; \p ConvSnaps are the
/// dense reconstruction snapshots (stride \p ConvStride) shared by the
/// probe's Verify and the lockstep-prefix skip, which \p Accesses drives.
void classifyUntypedTasks(const Program &Prog, const TheoremConfig &Config,
                          const CampaignOptions &Opts,
                          const std::vector<InjectionTask> &Tasks,
                          const std::vector<UntypedSnapshot> &Snaps,
                          const OutputTrace &RefTrace,
                          const MachineState &RefFinal, uint64_t RefSteps,
                          const std::vector<uint64_t> &Timeline,
                          const std::vector<UntypedSnapshot> &ConvSnaps,
                          uint64_t ConvStride, const AccessLog *Accesses,
                          const std::vector<ExecRec> *Execs,
                          CampaignResult &R) {
  auto AddViolation = [&](std::string V) {
    R.Ok = false;
    if (R.Violations.size() < Config.MaxViolations)
      R.Violations.push_back(std::move(V));
  };

  const ExecEngine &E = Opts.Engine ? *Opts.Engine : referenceEngine();
  R.Stats.Engine = E.name();
  // JIT-tier provenance: compilation stats are per-program constants; the
  // side-exit counter is cumulative across the engine's lifetime, so this
  // campaign's share is the delta over the classification phase.
  const auto *JE = dynamic_cast<const vm::JitEngine *>(&E);
  uint64_t JitExitsBefore = JE ? JE->sideExits() : 0;
  if (JE) {
    R.Stats.JitNative = JE->native();
    R.Stats.JitBlocksCompiled = JE->blocksCompiled();
    R.Stats.JitCodeBytes = JE->codeBytes();
  }
  unsigned Threads = Opts.Threads
                         ? Opts.Threads
                         : std::max(1u, std::thread::hardware_concurrency());
  R.Stats.ThreadsUsed =
      (unsigned)std::min<uint64_t>(Threads, std::max<size_t>(1, Tasks.size()));
  Expected<MachineState> Initial = Prog.initialState();
  if (Error Err = Initial.takeError()) {
    AddViolation("cannot start: " + Err.message());
    return;
  }

  bool Recover = Config.Recovery.Enabled;
  bool Converge =
      !Recover && Opts.Converge && !Timeline.empty() && !ConvSnaps.empty();
  R.Stats.Converge = Converge;
  ConvergenceContext Conv{&Timeline, &ConvSnaps,
                          std::max<uint64_t>(1, ConvStride), Accesses, Execs};
  Addr ExitAddr = Prog.exitAddress();
  std::vector<uint8_t> Verdicts(Tasks.size(), 0);
  std::vector<std::string> Details(Tasks.size());
  std::vector<RecoveryStats> TaskStats(Recover ? Tasks.size() : 0);
  std::vector<ConvergenceHit> Hits(Converge ? Tasks.size() : 0);
  auto RunOne = [&](uint64_t I) {
    const InjectionTask &T = Tasks[I];
    const UntypedSnapshot &Snap = Snaps[T.SnapIdx];
    MachineState S;
    size_t TraceLen;
    if (Opts.Resume == ResumeMode::Snapshot) {
      S = Snap.S;
      TraceLen = Snap.TraceLen;
    } else {
      S = *Initial;
      OutputTrace Prefix;
      E.replaySteps(S, Snap.Steps, Prefix, Config.Policy);
      TraceLen = Prefix.size();
    }
    if (Recover) {
      RecoveredOutcome O = classifyRecoveringContinuation(
          E, ExitAddr, Config.Policy, Config.Recovery, Config.ExtraSteps,
          RefTrace, RefFinal, RefSteps, std::move(S), Snap.Steps, TraceLen,
          T.Site, T.Value);
      Verdicts[I] = (uint8_t)O.V;
      Details[I] = std::move(O.Detail);
      TaskStats[I] = O.Stats;
    } else {
      Verdict V = classifyContinuation(
          E, ExitAddr, Config.Policy, Config.ExtraSteps, RefTrace, RefFinal,
          RefSteps, std::move(S), Snap.Steps, TraceLen, T.Site, T.Value,
          Converge ? &Conv : nullptr, Converge ? &Hits[I] : nullptr);
      Verdicts[I] = (uint8_t)V;
      if (!isBenign(V))
        Details[I] =
            describeInjection(T.Site, T.Value, Snap.Steps, abnormalMessage(V));
    }
  };
  // Batched lane execution. Each worker owns whole blocks of the
  // snapshot-major task list: it discharges the scalar-only residue task
  // by task — pc sites (they deviate at the very next fetch), memory and
  // queue sites (the paired-store cross-check catches them within a
  // couple of transitions), and register sites the differential replay
  // settles outright — and pools what remains into lockstep lane groups
  // of LaneWidth. With the differential replay armed, the pooled
  // register continuations are grouped by their *bail step*: every value
  // zapped into one site bails at the same event, so the group shares
  // one reconstructed base state (snapshot + replay, amortized across
  // the lanes) with each lane's taint patched in — the lanes execute
  // only the post-bail tail the scalar classifier would also execute,
  // at group-amortized dispatch cost. Without it (no access log, or
  // --no-converge), register continuations group by snapshot and run
  // from the injection point. Per-task result slots keep the merge
  // deterministic regardless of how tasks were batched.
  bool UseLanes = !Recover && Opts.Lanes && !Tasks.empty();
  R.Stats.Lanes = UseLanes;
  if (UseLanes) {
    uint64_t Width = std::max(1u, Opts.LaneWidth);
    R.Stats.LaneWidth = (unsigned)Width;
    R.Stats.SimdLaneWidth = vm::simd::laneWidth();
    vm::LaneEngine LE(Prog.code());
    bool DiffReplay =
        Converge && Conv.Accesses && Conv.Execs && !Conv.Execs->empty();

    struct LaneBlock {
      uint64_t Begin, End;
    };
    uint64_t BlockCap = std::max<uint64_t>(32 * Width, 256);
    std::vector<LaneBlock> Blocks;
    for (uint64_t I = 0; I != Tasks.size();) {
      uint64_t J = I + 1;
      while (J != Tasks.size() && Tasks[J].SnapIdx == Tasks[I].SnapIdx &&
             J - I < BlockCap)
        ++J;
      Blocks.push_back({I, J});
      I = J;
    }

    struct LaneBlockStats {
      uint64_t Groups = 0, LaneTasks = 0, Deviations = 0, Steps = 0;
    };
    std::vector<LaneBlockStats> BlockStats(Blocks.size());

    // Task-granularity progress across block-granularity dispatch.
    std::atomic<uint64_t> TasksDone{0};
    std::mutex ProgressMu;
    auto ReportProgress = [&](uint64_t N) {
      if (!Opts.Progress || !Opts.ProgressInterval)
        return;
      uint64_t Prev = TasksDone.fetch_add(N, std::memory_order_acq_rel);
      uint64_t Done = Prev + N;
      if (Done == Tasks.size() ||
          Done / Opts.ProgressInterval != Prev / Opts.ProgressInterval) {
        std::lock_guard<std::mutex> Lock(ProgressMu);
        Opts.Progress({Done, Tasks.size()});
      }
    };

    // Reusable per-block scratch: the SoA lane bank and the per-lane
    // bookkeeping arrays. A block runs dozens of small groups; reusing one
    // full-width allocation across them removes the dominant fixed cost of
    // short-lived groups (most post-bail lanes detect within a few steps).
    struct LaneScratch {
      vm::LaneState Bank;
      std::vector<MachineState> States;
      std::vector<ZapTag> Zs;
      std::vector<PrefixTracker> Prefixes;
      std::vector<uint64_t> ConvIdx;
      std::vector<LaneOutcome> Outs;
      explicit LaneScratch(unsigned W)
          : Bank(W), States(W), Zs(W, ZapTag::color(Color::Green)),
            ConvIdx(W, 0), Outs(W) {
        Prefixes.reserve(W);
      }
      /// Rebinds slot \p L to a fresh copy of \p Base minus the value
      /// memory, which stays shared across the group: the fault model
      /// never corrupts memory (it sits in the protected sphere), so
      /// register and queue injections alike leave it untouched.
      /// Container capacity survives the assignments.
      MachineState &rebind(unsigned L, const MachineState &Base) {
        MachineState &S = States[L];
        S.Faulted = false;
        S.Code = Base.Code;
        S.Regs = Base.Regs;
        S.Mem = ValueMemory();
        S.Queue = Base.Queue;
        S.IR = Base.IR;
        return S;
      }
    };

    // One lane group: resume + inject W same-snapshot tasks, run them in
    // lockstep, map each lane's outcome through the shared verdict logic.
    auto RunLaneGroup = [&](LaneScratch &SC, const uint64_t *Idx, unsigned W,
                            LaneBlockStats &BS) {
      const UntypedSnapshot &Snap = Snaps[Tasks[Idx[0]].SnapIdx];
      // One base reconstruction serves the whole group: in Replay mode the
      // snapshot prefix is re-simulated once and every lane copies the
      // result (the scalar path replays it per task).
      MachineState ReplayBase;
      size_t TraceLen = Snap.TraceLen;
      const MachineState *BasePtr = &Snap.S;
      if (Opts.Resume != ResumeMode::Snapshot) {
        ReplayBase = *Initial;
        OutputTrace Prefix;
        E.replaySteps(ReplayBase, Snap.Steps, Prefix, Config.Policy);
        TraceLen = Prefix.size();
        BasePtr = &ReplayBase;
      }
      const MachineState &Base = *BasePtr;
      std::vector<PrefixTracker> &Prefixes = SC.Prefixes;
      std::vector<uint64_t> &ConvIdx = SC.ConvIdx;
      Prefixes.clear();
      for (unsigned L = 0; L != W; ++L) {
        const InjectionTask &T = Tasks[Idx[L]];
        MachineState &S = SC.rebind(L, Base);
        SC.Zs[L] = ZapTag::color(faultColor(Base, T.Site));
        injectFault(S, T.Site, T.Value);
        Prefixes.push_back(PrefixTracker{RefTrace, TraceLen});
      }

      LaneGroupSpec GSpec;
      GSpec.ExitAddr = ExitAddr;
      GSpec.Budget = RefSteps - Snap.Steps + Config.ExtraSteps;
      GSpec.Policy = Config.Policy;
      GSpec.SharedMem = &Base.Mem;
      GSpec.OnOutput = [&Prefixes](unsigned L, const QueueEntry &Out) {
        Prefixes[L].track(Out);
      };

      // Lanes probe the same boundary indices in lockstep, so the
      // reference reconstruction is cached across the group — one
      // snapshot replay serves up to W fingerprint matches.
      struct RefCache {
        uint64_t Idx = ~uint64_t{0};
        MachineState Ref;
        size_t TraceLen = 0;
      } Cache;
      LaneProbe Probe;
      if (Converge) {
        Probe.Timeline = Timeline.data();
        Probe.Size = Timeline.size();
        Probe.StartStep = Snap.Steps;
        Probe.Mask = ProbeMask;
        Probe.Verify = [&](unsigned L, const MachineState &FS, uint64_t Idx) {
          if (Prefixes[L].Diverged)
            return false;
          if (Cache.Idx != Idx) {
            const UntypedSnapshot &Base = ConvSnaps[Idx / Conv.Stride];
            assert(Base.Steps <= Idx && "snapshot stride invariant violated");
            MachineState Ref = Base.S;
            OutputTrace Replayed;
            E.replaySteps(Ref, Idx - Base.Steps, Replayed, Config.Policy);
            Cache = {Idx, std::move(Ref), Base.TraceLen + Replayed.size()};
          }
          if (Prefixes[L].MatchPos != Cache.TraceLen)
            return false;
          if (!(FS == Cache.Ref))
            return false; // fingerprint collision — the guard held
          ConvIdx[L] = Idx;
          return true;
        };
        GSpec.Probe = &Probe;
      }

      LaneOutcome *Outs = SC.Outs.data();
      LE.run(SC.States.data(), W, GSpec, Outs, SC.Bank);

      ++BS.Groups;
      for (unsigned L = 0; L != W; ++L) {
        uint64_t I = Idx[L];
        const InjectionTask &T = Tasks[I];
        if (Outs[L].Status == RunStatus::Converged && Converge) {
          Hits[I].Hit = true;
          Hits[I].Window = ConvIdx[L] - Snap.Steps;
          Hits[I].Saved = RefSteps - ConvIdx[L];
        }
        Verdict V = verdictForStatus(Outs[L].Status, Prefixes[L], RefTrace,
                                     SC.Zs[L], SC.States[L], RefFinal);
        Verdicts[I] = (uint8_t)V;
        if (!isBenign(V))
          Details[I] =
              describeInjection(T.Site, T.Value, Snap.Steps, abnormalMessage(V));
        ++BS.LaneTasks;
        if (Outs[L].Deviated)
          ++BS.Deviations;
        BS.Steps += Outs[L].GroupSteps;
      }
    };

    // A register continuation the differential replay could not settle,
    // waiting to be pooled with its bail-step neighbors.
    struct BailEntry {
      uint64_t Resume;
      uint64_t Task;
      ZapTag Z;
      TaintMap Taint;
    };

    // One post-bail lane group: every entry bails at the same reference
    // step \p Resume, where the caller's rolled reconstruction \p Ref
    // already sits; each lane is that state with its own taint payloads
    // patched in (exactly the repositioned state the scalar bail path
    // builds). The lanes then run only the post-bail tail, probing for
    // re-convergence on the way, and map through the shared verdict
    // logic.
    auto RunLaneGroupAtResume = [&](LaneScratch &SC, const BailEntry *Ent,
                                    unsigned W, LaneBlockStats &BS,
                                    const MachineState &Ref,
                                    size_t TraceLenAt) {
      uint64_t Resume = Ent[0].Resume;
      std::vector<PrefixTracker> &Prefixes = SC.Prefixes;
      std::vector<uint64_t> &ConvIdx = SC.ConvIdx;
      Prefixes.clear();
      for (unsigned L = 0; L != W; ++L) {
        const InjectionTask &T = Tasks[Ent[L].Task];
        const UntypedSnapshot &Snap = Snaps[T.SnapIdx];
        SC.Zs[L] = Ent[L].Z;
        // Registers, queue and in-flight instruction are per-lane copies
        // of the base; the value memory stays shared (SharedMem below) —
        // taints only touch register payloads.
        MachineState &S = SC.rebind(L, Ref);
        patchTaint(S, Ent[L].Taint);
        Prefixes.push_back(PrefixTracker{RefTrace, TraceLenAt});
        // Mirror the scalar bail's skip accounting, including its "short
        // prefixes are re-simulated, not skipped" threshold, so the
        // lockstep-skip statistics fold onto the scalar sweep's.
        if (Resume > Snap.Steps + 64)
          Hits[Ent[L].Task].Skipped = Resume - Snap.Steps;
      }

      LaneGroupSpec GSpec;
      GSpec.ExitAddr = ExitAddr;
      GSpec.Budget = RefSteps - Resume + Config.ExtraSteps;
      GSpec.Policy = Config.Policy;
      GSpec.SharedMem = &Ref.Mem;
      GSpec.OnOutput = [&Prefixes](unsigned L, const QueueEntry &Out) {
        Prefixes[L].track(Out);
      };

      struct RefCache {
        uint64_t Idx = ~uint64_t{0};
        MachineState Ref;
        size_t TraceLen = 0;
      } Cache;
      LaneProbe Probe;
      Probe.Timeline = Timeline.data();
      Probe.Size = Timeline.size();
      Probe.StartStep = Resume;
      Probe.Mask = ProbeMask;
      Probe.Verify = [&](unsigned L, const MachineState &FS, uint64_t Idx) {
        if (Prefixes[L].Diverged)
          return false;
        if (Cache.Idx != Idx) {
          // Reconstruct from whichever reference state sits closest below
          // Idx: the previous cache entry (probe indices only grow, so it
          // rolls forward in place), the group base at Resume, or the
          // stride snapshot.
          const UntypedSnapshot &B = ConvSnaps[Idx / Conv.Stride];
          assert(B.Steps <= Idx && "snapshot stride invariant violated");
          OutputTrace Rep;
          if (Cache.Idx != ~uint64_t{0} && Cache.Idx <= Idx &&
              Cache.Idx >= B.Steps && Cache.Idx >= Resume) {
            E.replaySteps(Cache.Ref, Idx - Cache.Idx, Rep, Config.Policy);
            Cache.TraceLen += Rep.size();
            Cache.Idx = Idx;
          } else if (Resume >= B.Steps) {
            MachineState R2 = Ref;
            E.replaySteps(R2, Idx - Resume, Rep, Config.Policy);
            Cache = {Idx, std::move(R2), TraceLenAt + Rep.size()};
          } else {
            MachineState R2 = B.S;
            E.replaySteps(R2, Idx - B.Steps, Rep, Config.Policy);
            Cache = {Idx, std::move(R2), B.TraceLen + Rep.size()};
          }
        }
        if (Prefixes[L].MatchPos != Cache.TraceLen)
          return false;
        if (!(FS == Cache.Ref))
          return false; // fingerprint collision — the guard held
        ConvIdx[L] = Idx;
        return true;
      };
      GSpec.Probe = &Probe;

      LaneOutcome *Outs = SC.Outs.data();
      LE.run(SC.States.data(), W, GSpec, Outs, SC.Bank);

      ++BS.Groups;
      for (unsigned L = 0; L != W; ++L) {
        uint64_t I = Ent[L].Task;
        const InjectionTask &T = Tasks[I];
        const UntypedSnapshot &Snap = Snaps[T.SnapIdx];
        if (Outs[L].Status == RunStatus::Converged) {
          Hits[I].Hit = true;
          Hits[I].Window = ConvIdx[L] - Snap.Steps;
          Hits[I].Saved = RefSteps - ConvIdx[L];
        }
        Verdict V = verdictForStatus(Outs[L].Status, Prefixes[L], RefTrace,
                                     SC.Zs[L], SC.States[L], RefFinal);
        Verdicts[I] = (uint8_t)V;
        if (!isBenign(V))
          Details[I] =
              describeInjection(T.Site, T.Value, Snap.Steps, abnormalMessage(V));
        ++BS.LaneTasks;
        if (Outs[L].Deviated)
          ++BS.Deviations;
        BS.Steps += Outs[L].GroupSteps;
      }
    };

    auto RunBlock = [&](uint64_t B) {
      const LaneBlock &Blk = Blocks[B];
      LaneBlockStats &BS = BlockStats[B];
      LaneScratch SC((unsigned)Width);
      std::vector<uint64_t> Pending;
      std::vector<BailEntry> Bails;
      for (uint64_t I = Blk.Begin; I != Blk.End; ++I) {
        const InjectionTask &T = Tasks[I];
        // pc sites deviate at the very next fetch (lanes cannot share a
        // pc pair with them), so they stay on the scalar classifier.
        if (T.Site.K == FaultSite::Kind::Register && T.Site.R.isPC()) {
          RunOne(I);
          continue;
        }
        // Queue corruptions ride the reference control flow until the
        // paired-store cross-check reaches the damaged entry, so they
        // pool from the snapshot like unreplayed register faults.
        if (T.Site.K != FaultSite::Kind::Register) {
          Pending.push_back(I);
          continue;
        }
        if (DiffReplay) {
          // Same fast path as the scalar classifier, in defer mode: the
          // differential replay either settles the verdict outright or
          // reports where the continuation must resume concretely.
          const UntypedSnapshot &Snap = Snaps[T.SnapIdx];
          ZapTag Z = ZapTag::color(faultColor(Snap.S, T.Site));
          uint64_t AtSteps = Snap.Steps;
          size_t TraceLen = Snap.TraceLen;
          MachineState Untouched; // defer mode never writes it
          DeferredBail DB;
          if (std::optional<Verdict> V = differentialReplay(
                  E, Config.Policy, Conv, T.Site, T.Value, RefFinal, RefSteps,
                  Z, Untouched, AtSteps, TraceLen, &Hits[I], &DB)) {
            Verdicts[I] = (uint8_t)*V;
            if (!isBenign(*V))
              Details[I] = describeInjection(T.Site, T.Value, Snap.Steps,
                                             abnormalMessage(*V));
          } else {
            Bails.push_back({DB.Resume, I, Z, std::move(DB.Taint)});
          }
          continue;
        }
        Pending.push_back(I);
      }
      // Queue-site groups and — without the differential replay —
      // register-site groups share a snapshot (blocks never cross one)
      // and run from the injection.
      for (size_t P = 0; P < Pending.size(); P += Width)
        RunLaneGroup(SC, &Pending[P],
                     (unsigned)std::min<size_t>(Width, Pending.size() - P), BS);
      // With it, pool by bail step: the stable sort keeps task order
      // within a pool, so grouping stays deterministic.
      std::stable_sort(Bails.begin(), Bails.end(),
                       [](const BailEntry &A, const BailEntry &B) {
                         return A.Resume < B.Resume;
                       });
      // The pools resume at increasing reference steps, so one rolled
      // reconstruction serves them all: each pool replays the reference
      // forward from the previous pool's bail step (or from the closest
      // snapshot, whichever is nearer) instead of re-deriving its base
      // from a snapshot — the whole block's reconstruction cost becomes
      // one pass over the bail-step span.
      MachineState Roll;
      uint64_t RollAt = 0;
      size_t RollLen = 0;
      bool HaveRoll = false;
      for (size_t P = 0; P != Bails.size();) {
        size_t Q = P + 1;
        while (Q != Bails.size() && Bails[Q].Resume == Bails[P].Resume &&
               Q - P < Width)
          ++Q;
        uint64_t Resume = Bails[P].Resume;
        const UntypedSnapshot &CB = ConvSnaps[Resume / Conv.Stride];
        const UntypedSnapshot &IS = Snaps[Tasks[Bails[P].Task].SnapIdx];
        const UntypedSnapshot &SB = IS.Steps > CB.Steps ? IS : CB;
        assert(SB.Steps <= Resume && "snapshot stride invariant violated");
        OutputTrace Rep;
        if (HaveRoll && RollAt <= Resume && RollAt >= SB.Steps) {
          E.replaySteps(Roll, Resume - RollAt, Rep, Config.Policy);
          RollLen += Rep.size();
        } else {
          Roll = SB.S;
          E.replaySteps(Roll, Resume - SB.Steps, Rep, Config.Policy);
          RollLen = SB.TraceLen + Rep.size();
          HaveRoll = true;
        }
        RollAt = Resume;
        RunLaneGroupAtResume(SC, &Bails[P], (unsigned)(Q - P), BS, Roll,
                             RollLen);
        P = Q;
      }
      ReportProgress(Blk.End - Blk.Begin);
    };

    dispatchTasks(Threads, Blocks.size(), RunBlock, 0, nullptr);

    for (const LaneBlockStats &BS : BlockStats) {
      R.Stats.LaneGroups += BS.Groups;
      R.Stats.LaneTasks += BS.LaneTasks;
      R.Stats.LaneDeviations += BS.Deviations;
      R.Stats.LaneLockstepSteps += BS.Steps;
    }
  } else {
    dispatchTasks(Threads, Tasks.size(), RunOne, Opts.ProgressInterval,
                  Opts.Progress);
  }

  // Deterministic merge: counters sum (order-independent), violations keep
  // enumeration order, the window maximum commutes.
  for (size_t I = 0; I != Tasks.size(); ++I) {
    R.Table[(Verdict)Verdicts[I]] += 1;
    if (!Details[I].empty())
      AddViolation(std::move(Details[I]));
    if (Recover)
      R.Recovery.merge(TaskStats[I]);
    if (Converge) {
      if (Hits[I].Hit) {
        ++R.Stats.EarlyExits;
        R.Stats.WindowSum += Hits[I].Window;
        R.Stats.MaxWindow = std::max(R.Stats.MaxWindow, Hits[I].Window);
        R.Stats.StepsSaved += Hits[I].Saved;
      }
      if (Hits[I].Skipped) {
        ++R.Stats.LockstepSkips;
        R.Stats.LockstepSteps += Hits[I].Skipped;
      }
    }
  }
  if (JE)
    R.Stats.JitSideExits = JE->sideExits() - JitExitsBefore;
}

} // namespace

CampaignResult talft::runFaultToleranceCampaign(TypeContext &TC,
                                                const CheckedProgram &CP,
                                                const TheoremConfig &ConfigIn,
                                                const CampaignOptions &Opts) {
  CampaignResult R;
  // The CFI table (when requested) rides on the step policy, so every
  // engine — reference interpreter, vm, lanes — validates commits through
  // the same hook. Record-only: verdicts cannot depend on it.
  std::unique_ptr<CfiTable> Cfi = buildCfiTable(*CP.Prog, Opts);
  TheoremConfig Config = ConfigIn;
  if (Cfi)
    Config.Policy.Cfi = Cfi.get();
  auto FinishCfi = [&] {
    if (!Cfi)
      return;
    R.Stats.CfiChecked = true;
    R.Stats.CfiCommits = Cfi->commits();
    R.Stats.CfiViolations = Cfi->violations();
    R.CfiFirstViolation = Cfi->firstViolation();
  };
  auto AddViolation = [&](std::string V) {
    R.Ok = false;
    if (R.Violations.size() < Config.MaxViolations)
      R.Violations.push_back(std::move(V));
  };

  // Phase 1 (serial): the reference execution, snapshotting every
  // injection step. Typed campaigns keep full TrackedRun snapshots (state
  // plus closing substitution); classification-only campaigns keep just
  // the machine state and the trace length.
  Clock::time_point RefStart = Clock::now();
  bool Typed = Config.TypeCheckFaultyStates;
  if (Typed && Config.Recovery.Enabled) {
    AddViolation("recovery cannot be combined with TypeCheckFaultyStates: "
                 "rollback replays run on the raw semantics");
    FinishCfi();
    return R;
  }
  uint64_t Stride = std::max<uint64_t>(1, Config.InjectionStride);

  TrackedRun Run(TC, CP, Config.Policy);
  if (Error E = Run.start()) {
    AddViolation("cannot start: " + E.message());
    FinishCfi();
    return R;
  }

  std::vector<TrackedRun::Snapshot> TypedSnaps;
  std::vector<UntypedSnapshot> Snaps;
  auto TakeSnapshot = [&] {
    if (Typed)
      TypedSnaps.push_back(Run.snapshot());
    else
      Snaps.push_back({Run.state(), Run.steps(), Run.trace().size()});
  };

  // The convergence recorder: the per-step fingerprint timeline (8
  // bytes/step) the probe compares faulty continuations against, the
  // register access log for the lockstep-prefix skip, and dense
  // reconstruction snapshots. Typed and recovery campaigns never probe,
  // so they skip the recording.
  ConvergenceRecorder CR;
  CR.Enabled = !Typed && !Config.Recovery.Enabled && Opts.Converge;

  // Step count of the latest point where a control instruction was
  // in-flight (about to execute). A snapshot taken at or before that
  // count still has a control instruction ahead of it in the reference
  // run — the input to the d-register discharge rule.
  int64_t LastCtrl = -1;
  TakeSnapshot(); // Step 0 is always an injection point.
  CR.start(Run.state());
  while (!Run.atExitBlock()) {
    if (Run.steps() >= Config.MaxSteps) {
      AddViolation("reference run exceeded MaxSteps");
      FinishCfi();
      return R;
    }
    if (Run.state().IR && Run.state().IR->isControlFlow())
      LastCtrl = (int64_t)Run.steps();
    CR.beforeStep(Run.state(), Run.steps() + 1);
    StepResult SR = Run.stepOnce();
    if (SR.Status != StepStatus::Ok) {
      AddViolation(formatv("reference run failed at step %llu (%s)",
                           (unsigned long long)Run.steps(),
                           SR.Status == StepStatus::Stuck ? "stuck"
                                                          : "false positive"));
      FinishCfi();
      return R;
    }
    CR.afterStep(Run.state(), Run.steps(), Run.trace().size());
    if (Run.steps() % Stride == 0)
      TakeSnapshot();
  }
  TrackedRun::Snapshot RefFinal = Run.snapshot();
  R.ReferenceSteps = RefFinal.Steps;
  R.ReferenceTrace = RefFinal.Trace;

  std::optional<analysis::ZapCoverage> Oracle =
      buildPruneOracle(*CP.Prog, Opts);
  // Control-register discharge needs the oracle's guarantee that specials
  // never appear as instruction operands, the raw semantics (typed
  // campaigns re-check states, recovery rewrites continuations), and
  // enough extra steps for the corrupted run to reach its next control.
  bool SpecialDischarge = Oracle && Oracle->specialSiteDischargeSound() &&
                          !Typed && !Config.Recovery.Enabled &&
                          Config.ExtraSteps >= 2;
  std::vector<uint8_t> CtrlAhead;
  if (SpecialDischarge) {
    CtrlAhead.resize(Snaps.size());
    for (size_t I = 0; I != Snaps.size(); ++I)
      CtrlAhead[I] = LastCtrl >= 0 && (uint64_t)LastCtrl >= Snaps[I].Steps;
  }
  std::vector<InjectionTask> Tasks = enumerateTasks(
      *CP.Prog, Config, Typed ? TypedSnaps.size() : Snaps.size(),
      [&](size_t SI) -> const MachineState & {
        return Typed ? TypedSnaps[SI].S : Snaps[SI].S;
      },
      Oracle ? &*Oracle : nullptr, R.Table,
      SpecialDischarge ? &CtrlAhead : nullptr);
  R.Stats.ReferenceSeconds = secondsSince(RefStart);
  if (Expected<MachineState> Init = CP.Prog->initialState())
    R.ProgramHash =
        programContentHash(CP.Prog->code(), CP.Prog->entryAddress(),
                           CP.Prog->exitAddress(), *Init);
  if (!applyShardSlice(Opts, Config, Tasks, R)) {
    FinishCfi();
    return R;
  }
  R.Stats.Tasks = Tasks.size();
  R.Stats.Pruned = Oracle.has_value();
  R.Stats.PrunedTasks = R.Table[Verdict::StaticallyMasked] +
                        R.Table[Verdict::StaticallyDetected];
  R.Stats.PrunedDetected = R.Table[Verdict::StaticallyDetected];

  // Phase 3: classify every continuation. Typed campaigns run serially
  // through the shared TypeContext; classification-only campaigns fan out.
  Clock::time_point InjectStart = Clock::now();
  if (Typed) {
    // Typed campaigns re-check ⊢Z S through TrackedRun, which owns the
    // typing bookkeeping; they always replay on the reference semantics.
    R.Stats.Engine = referenceEngine().name();
    R.Stats.ThreadsUsed = 1;
    uint64_t Done = 0;
    for (const InjectionTask &T : Tasks) {
      const TrackedRun::Snapshot *At = &TypedSnaps[T.SnapIdx];
      TrackedRun::Snapshot Replayed;
      if (Opts.Resume == ResumeMode::Replay) {
        // Rebuild the snapshot by re-executing the reference prefix.
        TrackedRun Fresh(TC, CP, Config.Policy);
        if (Error E = Fresh.start()) {
          AddViolation("cannot start: " + E.message());
          FinishCfi();
          return R;
        }
        while (Fresh.steps() < TypedSnaps[T.SnapIdx].Steps)
          Fresh.stepOnce();
        Replayed = Fresh.snapshot();
        At = &Replayed;
      }
      TypedOutcome O = runTypedInjection(Config, Run, *At, T.Site, T.Value,
                                         RefFinal, RefFinal.Trace);
      R.Table[O.V] += 1;
      R.StatesTypechecked += O.Typechecked;
      if (!isBenign(O.V))
        AddViolation(std::move(O.Detail));
      ++Done;
      if (Opts.Progress && Opts.ProgressInterval &&
          (Done % Opts.ProgressInterval == 0 || Done == Tasks.size()))
        Opts.Progress({Done, Tasks.size()});
    }
  } else {
    classifyUntypedTasks(*CP.Prog, Config, Opts, Tasks, Snaps, RefFinal.Trace,
                         RefFinal.S, RefFinal.Steps, CR.Timeline, CR.Snaps,
                         CR.Stride, &CR.Accesses, &CR.Execs, R);
  }

  if (Opts.ShardRetiredHook)
    Opts.ShardRetiredHook(R.Stats.ShardIndex, R.Stats.ShardCount);
  R.Stats.WallSeconds = secondsSince(InjectStart);
  if (R.Stats.WallSeconds > 0)
    R.Stats.TriplesPerSecond = (double)Tasks.size() / R.Stats.WallSeconds;
  FinishCfi();
  return R;
}

CampaignResult talft::runSingleFaultCampaign(const Program &Prog,
                                             const TheoremConfig &ConfigIn,
                                             const CampaignOptions &Opts) {
  CampaignResult R;
  std::unique_ptr<CfiTable> Cfi = buildCfiTable(Prog, Opts);
  TheoremConfig Config = ConfigIn;
  if (Cfi)
    Config.Policy.Cfi = Cfi.get();
  auto FinishCfi = [&] {
    if (!Cfi)
      return;
    R.Stats.CfiChecked = true;
    R.Stats.CfiCommits = Cfi->commits();
    R.Stats.CfiViolations = Cfi->violations();
    R.CfiFirstViolation = Cfi->firstViolation();
  };
  auto AddViolation = [&](std::string V) {
    R.Ok = false;
    if (R.Violations.size() < Config.MaxViolations)
      R.Violations.push_back(std::move(V));
  };
  if (Config.TypeCheckFaultyStates) {
    AddViolation("the raw-semantics sweep cannot re-typecheck faulty states; "
                 "use runFaultToleranceCampaign on a checked program");
    FinishCfi();
    return R;
  }

  // Phase 1 (serial): the reference execution on the raw semantics,
  // snapshotting every injection step — the same loop shape as the typed
  // campaign's, so the violation wording matches.
  Clock::time_point RefStart = Clock::now();
  uint64_t Stride = std::max<uint64_t>(1, Config.InjectionStride);
  const ExecEngine &E = Opts.Engine ? *Opts.Engine : referenceEngine();

  Expected<MachineState> S0 = Prog.initialState();
  if (Error Err = S0.takeError()) {
    AddViolation("cannot start: " + Err.message());
    FinishCfi();
    return R;
  }
  MachineState S = *S0;
  Addr ExitAddr = Prog.exitAddress();
  R.ProgramHash =
      programContentHash(Prog.code(), Prog.entryAddress(), ExitAddr, S);
  OutputTrace Trace;
  uint64_t Steps = 0;
  ConvergenceRecorder CR;
  CR.Enabled = !Config.Recovery.Enabled && Opts.Converge;
  std::vector<UntypedSnapshot> Snaps;
  int64_t LastCtrl = -1;
  Snaps.push_back({S, 0, 0}); // Step 0 is always an injection point.
  CR.start(S);
  while (!atExit(S, ExitAddr)) {
    if (Steps >= Config.MaxSteps) {
      AddViolation("reference run exceeded MaxSteps");
      FinishCfi();
      return R;
    }
    if (S.IR && S.IR->isControlFlow())
      LastCtrl = (int64_t)Steps;
    CR.beforeStep(S, Steps + 1);
    StepResult SR = E.step(S, Config.Policy);
    ++Steps;
    if (SR.Output)
      Trace.push_back(*SR.Output);
    if (SR.Status != StepStatus::Ok) {
      AddViolation(formatv("reference run failed at step %llu (%s)",
                           (unsigned long long)Steps,
                           SR.Status == StepStatus::Stuck ? "stuck"
                                                          : "false positive"));
      FinishCfi();
      return R;
    }
    CR.afterStep(S, Steps, Trace.size());
    if (Steps % Stride == 0)
      Snaps.push_back({S, Steps, Trace.size()});
  }
  R.ReferenceSteps = Steps;
  R.ReferenceTrace = Trace;

  std::optional<analysis::ZapCoverage> Oracle = buildPruneOracle(Prog, Opts);
  bool SpecialDischarge = Oracle && Oracle->specialSiteDischargeSound() &&
                          !Config.Recovery.Enabled && Config.ExtraSteps >= 2;
  std::vector<uint8_t> CtrlAhead;
  if (SpecialDischarge) {
    CtrlAhead.resize(Snaps.size());
    for (size_t I = 0; I != Snaps.size(); ++I)
      CtrlAhead[I] = LastCtrl >= 0 && (uint64_t)LastCtrl >= Snaps[I].Steps;
  }
  std::vector<InjectionTask> Tasks =
      enumerateTasks(Prog, Config, Snaps.size(),
                     [&](size_t SI) -> const MachineState & {
                       return Snaps[SI].S;
                     },
                     Oracle ? &*Oracle : nullptr, R.Table,
                     SpecialDischarge ? &CtrlAhead : nullptr);
  R.Stats.ReferenceSeconds = secondsSince(RefStart);
  if (!applyShardSlice(Opts, Config, Tasks, R)) {
    FinishCfi();
    return R;
  }
  R.Stats.Tasks = Tasks.size();
  R.Stats.Pruned = Oracle.has_value();
  R.Stats.PrunedTasks = R.Table[Verdict::StaticallyMasked] +
                        R.Table[Verdict::StaticallyDetected];
  R.Stats.PrunedDetected = R.Table[Verdict::StaticallyDetected];

  Clock::time_point InjectStart = Clock::now();
  classifyUntypedTasks(Prog, Config, Opts, Tasks, Snaps, Trace, S, Steps,
                       CR.Timeline, CR.Snaps, CR.Stride, &CR.Accesses,
                       &CR.Execs, R);
  if (Opts.ShardRetiredHook)
    Opts.ShardRetiredHook(R.Stats.ShardIndex, R.Stats.ShardCount);
  R.Stats.WallSeconds = secondsSince(InjectStart);
  if (R.Stats.WallSeconds > 0)
    R.Stats.TriplesPerSecond = (double)Tasks.size() / R.Stats.WallSeconds;
  FinishCfi();
  return R;
}

namespace {

/// Classifies one explicit injection plan on the raw semantics via \p E.
/// Convergence probing applies only to the final continuation — the
/// interim replays between scheduled injections must execute for real,
/// since the next injection re-diverges the run anyway. The early exit is
/// sound by the same argument as the single-fault classifier: exact state
/// equality plus an exact output prefix at the same step index makes the
/// rest of the run identical to the reference tail, whose verdict here is
/// Masked (similarStates is reflexive and the cross-color guard only
/// *skips* the similarity check).
Verdict classifyPlan(const ExecEngine &E, const Program &Prog,
                     const StepPolicy &Policy, uint64_t ExtraSteps,
                     const OutputTrace &RefTrace, const MachineState &RefFinal,
                     uint64_t RefSteps, MachineState S,
                     const InjectionPlan &Plan,
                     const ConvergenceContext *Conv = nullptr,
                     ConvergenceHit *Hit = nullptr) {
  PrefixTracker Prefix{RefTrace, 0};

  uint64_t Now = 0;
  std::optional<Color> ZapColor;
  bool MixedColors = false;
  for (const InjectionPoint &P : Plan) {
    assert(P.Step >= Now && "injection plan must be step-ordered");
    // Fault and stuck transitions never emit output, so match-tracking the
    // chunk after the replay is equivalent to tracking each step inline.
    OutputTrace Chunk;
    ReplayResult RR = E.replaySteps(S, P.Step - Now, Chunk, Policy);
    Now += RR.Taken;
    for (const QueueEntry &Out : Chunk)
      Prefix.track(Out);
    if (RR.Last == StepStatus::Stuck)
      return Verdict::Stuck;
    if (RR.Last == StepStatus::Fault)
      return Prefix.Diverged ? Verdict::DetectedBadPrefix : Verdict::Detected;
    Color C = faultColor(S, P.Site);
    if (ZapColor && *ZapColor != C)
      MixedColors = true;
    ZapColor = C;
    injectFault(S, P.Site, P.Value);
  }

  ExecEngine::ConvergenceProbe Probe;
  const ExecEngine::ConvergenceProbe *ProbePtr = nullptr;
  uint64_t ConvIdx = 0;
  if (Conv) {
    Probe.Timeline = Conv->Timeline->data();
    Probe.Size = Conv->Timeline->size();
    Probe.StartStep = Now;
    Probe.Mask = ProbeMask;
    Probe.Verify = [&](const MachineState &FS, uint64_t Idx) {
      if (Prefix.Diverged)
        return false;
      const UntypedSnapshot &Base = (*Conv->Snaps)[Idx / Conv->Stride];
      assert(Base.Steps <= Idx && "snapshot stride invariant violated");
      MachineState Ref = Base.S;
      OutputTrace Replayed;
      E.replaySteps(Ref, Idx - Base.Steps, Replayed, Policy);
      if (Prefix.MatchPos != Base.TraceLen + Replayed.size())
        return false;
      if (!(FS == Ref))
        return false;
      ConvIdx = Idx;
      return true;
    };
    ProbePtr = &Probe;
  }

  uint64_t Budget = (RefSteps > Now ? RefSteps - Now : 0) + ExtraSteps;
  RunStatus St = E.runContinuation(
      S, Prog.exitAddress(), Budget, Policy,
      [&Prefix](const QueueEntry &Out) { Prefix.track(Out); }, ProbePtr);
  switch (St) {
  case RunStatus::OutOfSteps:
    return Verdict::BudgetExhausted;
  case RunStatus::Stuck:
    return Verdict::Stuck;
  case RunStatus::FaultDetected:
    return Prefix.Diverged ? Verdict::DetectedBadPrefix : Verdict::Detected;
  case RunStatus::Converged:
    if (Hit) {
      Hit->Hit = true;
      Hit->Window = ConvIdx - Now;
      Hit->Saved = RefSteps - ConvIdx;
    }
    return Verdict::Masked;
  case RunStatus::Halted:
    break;
  }

  if (Prefix.Diverged || Prefix.MatchPos != RefTrace.size())
    return Verdict::SilentCorruption;
  // Similarity is indexed by a single zap color; a cross-color plan has no
  // such index, so it classifies on the trace alone.
  if (!MixedColors && ZapColor &&
      !similarStates(ZapTag::color(*ZapColor), S, RefFinal))
    return Verdict::DissimilarState;
  return Verdict::Masked;
}

std::string describePlan(const InjectionPlan &Plan, const char *What) {
  std::string S = "plan [";
  for (size_t I = 0; I != Plan.size(); ++I) {
    if (I)
      S += "; ";
    S += formatv("%s := %lld at step %llu", Plan[I].Site.str().c_str(),
                 (long long)Plan[I].Value, (unsigned long long)Plan[I].Step);
  }
  S += "]: ";
  S += What;
  return S;
}

} // namespace

CampaignResult talft::runInjectionPlans(const PlanCampaign &Spec,
                                        const CampaignOptions &Opts) {
  CampaignResult R;
  assert(Spec.Prog && "plan campaign needs a program");

  const ExecEngine &E = Opts.Engine ? *Opts.Engine : referenceEngine();
  R.Stats.Engine = E.name();
  const auto *JE = dynamic_cast<const vm::JitEngine *>(&E);
  uint64_t JitExitsBefore = JE ? JE->sideExits() : 0;
  if (JE) {
    R.Stats.JitNative = JE->native();
    R.Stats.JitBlocksCompiled = JE->blocksCompiled();
    R.Stats.JitCodeBytes = JE->codeBytes();
  }

  Clock::time_point RefStart = Clock::now();
  Expected<MachineState> S0 = Spec.Prog->initialState();
  if (!S0) {
    R.Ok = false;
    R.Violations.push_back("cannot build initial state: " + S0.message());
    return R;
  }
  MachineState Final = *S0;
  R.ProgramHash =
      programContentHash(Spec.Prog->code(), Spec.Prog->entryAddress(),
                         Spec.Prog->exitAddress(), *S0);
  // With convergence on, the reference run goes stepwise so the per-step
  // fingerprint timeline and periodic snapshots can be recorded; the loop
  // mirrors talft::run's stopping conditions exactly (budget before exit).
  RunResult RefRun;
  std::vector<uint64_t> Timeline;
  std::vector<UntypedSnapshot> PlanSnaps;
  constexpr uint64_t PlanStride = 64;
  if (Opts.Converge) {
    Timeline.push_back(Final.fingerprint());
    PlanSnaps.push_back({Final, 0, 0});
    RefRun.Status = RunStatus::OutOfSteps;
    while (RefRun.Steps < Spec.MaxReferenceSteps) {
      if (atExit(Final, Spec.Prog->exitAddress())) {
        RefRun.Status = RunStatus::Halted;
        break;
      }
      StepResult SR = E.step(Final, Spec.Policy);
      if (SR.Status == StepStatus::Stuck) {
        RefRun.Status = RunStatus::Stuck;
        break;
      }
      ++RefRun.Steps;
      if (SR.Output)
        RefRun.Trace.push_back(*SR.Output);
      if (SR.Status == StepStatus::Fault) {
        RefRun.Status = RunStatus::FaultDetected;
        break;
      }
      Timeline.push_back(Final.fingerprint());
      if (RefRun.Steps % PlanStride == 0)
        PlanSnaps.push_back({Final, RefRun.Steps, RefRun.Trace.size()});
    }
  } else {
    RefRun = E.run(Final, Spec.Prog->exitAddress(), Spec.MaxReferenceSteps,
                   Spec.Policy);
  }
  if (RefRun.Status != RunStatus::Halted) {
    R.Ok = false;
    R.Violations.push_back(formatv("reference run did not halt (%s after %llu steps)",
                                   runStatusName(RefRun.Status),
                                   (unsigned long long)RefRun.Steps));
    return R;
  }
  R.ReferenceSteps = RefRun.Steps;
  R.ReferenceTrace = RefRun.Trace;
  R.Stats.ReferenceSeconds = secondsSince(RefStart);
  R.Stats.Tasks = Spec.Plans.size();
  R.Stats.TotalTasks = Spec.Plans.size();

  Clock::time_point InjectStart = Clock::now();
  unsigned Threads = Opts.Threads ? Opts.Threads
                                  : std::max(1u, std::thread::hardware_concurrency());
  R.Stats.ThreadsUsed = (unsigned)std::min<uint64_t>(
      Threads, std::max<size_t>(1, Spec.Plans.size()));

  bool Converge = Opts.Converge && !Timeline.empty();
  R.Stats.Converge = Converge;
  ConvergenceContext Conv{&Timeline, &PlanSnaps, PlanStride};
  std::vector<uint8_t> Verdicts(Spec.Plans.size(), 0);
  std::vector<ConvergenceHit> Hits(Converge ? Spec.Plans.size() : 0);
  auto RunOne = [&](uint64_t I) {
    Verdicts[I] = (uint8_t)classifyPlan(
        E, *Spec.Prog, Spec.Policy, Spec.ExtraSteps, RefRun.Trace, Final,
        RefRun.Steps, *S0, Spec.Plans[I], Converge ? &Conv : nullptr,
        Converge ? &Hits[I] : nullptr);
  };
  dispatchTasks(Threads, Spec.Plans.size(), RunOne, Opts.ProgressInterval,
                Opts.Progress);

  for (size_t I = 0; I != Spec.Plans.size(); ++I) {
    Verdict V = (Verdict)Verdicts[I];
    R.Table[V] += 1;
    if (Converge && Hits[I].Hit) {
      ++R.Stats.EarlyExits;
      R.Stats.WindowSum += Hits[I].Window;
      R.Stats.MaxWindow = std::max(R.Stats.MaxWindow, Hits[I].Window);
      R.Stats.StepsSaved += Hits[I].Saved;
    }
    // Multi-fault plans legitimately produce SilentCorruption (that is what
    // the double-fault ablation demonstrates); only a wedged machine is a
    // campaign-level violation here.
    if (V == Verdict::Stuck || V == Verdict::BudgetExhausted) {
      R.Ok = false;
      if (R.Violations.size() < 16)
        R.Violations.push_back(describePlan(Spec.Plans[I], abnormalMessage(V)));
    }
  }

  R.Stats.WallSeconds = secondsSince(InjectStart);
  if (R.Stats.WallSeconds > 0)
    R.Stats.TriplesPerSecond =
        (double)Spec.Plans.size() / R.Stats.WallSeconds;
  if (JE)
    R.Stats.JitSideExits = JE->sideExits() - JitExitsBefore;
  return R;
}

void talft::foldShardResult(CampaignResult &Acc, const CampaignResult &Shard,
                            size_t MaxViolations) {
  Acc.Ok = Acc.Ok && Shard.Ok;
  Acc.Table.merge(Shard.Table);
  Acc.StatesTypechecked += Shard.StatesTypechecked;
  // Each shard keeps a prefix of its slice's violations (the cap applies
  // per shard), so appending in shard-index order up to the same cap
  // reproduces the unsharded list exactly.
  for (const std::string &V : Shard.Violations)
    if (Acc.Violations.size() < MaxViolations)
      Acc.Violations.push_back(V);
  Acc.Recovery.merge(Shard.Recovery);
  if (!Acc.ProgramHash)
    Acc.ProgramHash = Shard.ProgramHash;
  if (!Acc.ReferenceSteps) {
    Acc.ReferenceSteps = Shard.ReferenceSteps;
    Acc.ReferenceTrace = Shard.ReferenceTrace;
  }

  CampaignStats &A = Acc.Stats;
  const CampaignStats &B = Shard.Stats;
  A.WallSeconds += B.WallSeconds;
  A.ReferenceSeconds += B.ReferenceSeconds;
  A.Tasks += B.Tasks;
  A.ThreadsUsed = std::max(A.ThreadsUsed, B.ThreadsUsed);
  A.Pruned = A.Pruned || B.Pruned;
  A.PrunedTasks += B.PrunedTasks;
  A.PrunedDetected += B.PrunedDetected;
  A.CfiChecked = A.CfiChecked || B.CfiChecked;
  A.CfiCommits += B.CfiCommits;
  A.CfiViolations += B.CfiViolations;
  if (Acc.CfiFirstViolation.empty())
    Acc.CfiFirstViolation = Shard.CfiFirstViolation;
  A.Converge = A.Converge || B.Converge;
  A.EarlyExits += B.EarlyExits;
  A.WindowSum += B.WindowSum;
  A.MaxWindow = std::max(A.MaxWindow, B.MaxWindow);
  A.StepsSaved += B.StepsSaved;
  A.LockstepSkips += B.LockstepSkips;
  A.LockstepSteps += B.LockstepSteps;
  A.Lanes = A.Lanes || B.Lanes;
  A.LaneWidth = std::max(A.LaneWidth, B.LaneWidth);
  A.LaneGroups += B.LaneGroups;
  A.LaneTasks += B.LaneTasks;
  A.LaneDeviations += B.LaneDeviations;
  A.LaneLockstepSteps += B.LaneLockstepSteps;
  // Compilation stats are per-program constants (identical in every
  // shard); side exits are an activity sum.
  A.JitNative = A.JitNative || B.JitNative;
  A.JitBlocksCompiled = std::max(A.JitBlocksCompiled, B.JitBlocksCompiled);
  A.JitCodeBytes = std::max(A.JitCodeBytes, B.JitCodeBytes);
  A.JitSideExits += B.JitSideExits;
  A.SimdLaneWidth = std::max(A.SimdLaneWidth, B.SimdLaneWidth);
  A.ShardCount = std::max(A.ShardCount, B.ShardCount);
  A.ShardIndex = std::min(A.ShardIndex, B.ShardIndex);
  A.ShardFirstTask = std::min(A.ShardFirstTask, B.ShardFirstTask);
  A.TotalTasks = std::max(A.TotalTasks, B.TotalTasks);
  A.ShardsFolded = (A.ShardsFolded ? A.ShardsFolded : 1) +
                   (B.ShardsFolded ? B.ShardsFolded : 1);
  A.TriplesPerSecond = A.WallSeconds > 0 ? (double)A.Tasks / A.WallSeconds : 0;
}

namespace {

void appendJsonEscaped(std::string &Out, const std::string &In) {
  Out += '"';
  for (char C : In) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if ((unsigned char)C < 0x20)
        Out += formatv("\\u%04x", (unsigned)(unsigned char)C);
      else
        Out += C;
    }
  }
  Out += '"';
}

} // namespace

std::string talft::campaignToJson(const CampaignResult &R, unsigned Indent) {
  std::string P(Indent, ' ');
  std::string S;
  S += P + "{\n";
  S += P + formatv("  \"ok\": %s,\n", R.Ok ? "true" : "false");
  S += P + formatv("  \"reference_steps\": %llu,\n",
                   (unsigned long long)R.ReferenceSteps);
  S += P + formatv("  \"program_hash\": \"%s\",\n",
                   programHashString(R.ProgramHash).c_str());
  S += P + formatv("  \"injections\": %llu,\n",
                   (unsigned long long)R.Table.total());
  S += P + "  \"verdicts\": {";
  for (size_t I = 0; I != NumVerdicts; ++I) {
    if (I)
      S += ", ";
    S += formatv("\"%s\": %llu", verdictJsonKey((Verdict)I),
                 (unsigned long long)R.Table.Counts[I]);
  }
  S += "},\n";
  S += P + formatv("  \"states_typechecked\": %llu,\n",
                   (unsigned long long)R.StatesTypechecked);
  S += P + formatv("  \"recovery\": {\"rollbacks\": %llu, "
                   "\"checkpoints\": %llu, \"replayed_outputs\": %llu},\n",
                   (unsigned long long)R.Recovery.Rollbacks,
                   (unsigned long long)R.Recovery.Checkpoints,
                   (unsigned long long)R.Recovery.ReplayedOutputs);
  S += P + formatv("  \"convergence\": {\"enabled\": %s, \"early_exits\": %llu, "
                   "\"mean_window\": %.2f, \"window_sum\": %llu, "
                   "\"max_window\": %llu, "
                   "\"steps_saved\": %llu, \"lockstep_skips\": %llu, "
                   "\"lockstep_steps\": %llu},\n",
                   R.Stats.Converge ? "true" : "false",
                   (unsigned long long)R.Stats.EarlyExits,
                   R.Stats.EarlyExits
                       ? (double)R.Stats.WindowSum / (double)R.Stats.EarlyExits
                       : 0.0,
                   (unsigned long long)R.Stats.WindowSum,
                   (unsigned long long)R.Stats.MaxWindow,
                   (unsigned long long)R.Stats.StepsSaved,
                   (unsigned long long)R.Stats.LockstepSkips,
                   (unsigned long long)R.Stats.LockstepSteps);
  S += P + formatv("  \"lanes\": {\"enabled\": %s, \"width\": %u, "
                   "\"groups\": %llu, \"lane_tasks\": %llu, "
                   "\"deviations\": %llu, \"lockstep_steps\": %llu},\n",
                   R.Stats.Lanes ? "true" : "false", R.Stats.LaneWidth,
                   (unsigned long long)R.Stats.LaneGroups,
                   (unsigned long long)R.Stats.LaneTasks,
                   (unsigned long long)R.Stats.LaneDeviations,
                   (unsigned long long)R.Stats.LaneLockstepSteps);
  S += P + formatv("  \"jit\": {\"native\": %s, \"blocks_compiled\": %llu, "
                   "\"code_bytes\": %llu, \"side_exits\": %llu, "
                   "\"simd_lane_width\": %u},\n",
                   R.Stats.JitNative ? "true" : "false",
                   (unsigned long long)R.Stats.JitBlocksCompiled,
                   (unsigned long long)R.Stats.JitCodeBytes,
                   (unsigned long long)R.Stats.JitSideExits,
                   R.Stats.SimdLaneWidth);
  S += P + formatv("  \"shard\": {\"count\": %u, \"index\": %u, "
                   "\"first_task\": %llu, \"tasks\": %llu, "
                   "\"total_tasks\": %llu, \"folded\": %u},\n",
                   R.Stats.ShardCount, R.Stats.ShardIndex,
                   (unsigned long long)R.Stats.ShardFirstTask,
                   (unsigned long long)R.Stats.Tasks,
                   (unsigned long long)R.Stats.TotalTasks,
                   R.Stats.ShardsFolded);
  S += P + "  \"violations\": [";
  for (size_t I = 0; I != R.Violations.size(); ++I) {
    S += I ? ", " : "";
    appendJsonEscaped(S, R.Violations[I]);
  }
  S += "],\n";
  S += P + formatv("  \"cfi\": {\"checked\": %s, \"commits\": %llu, "
                   "\"violations\": %llu, \"first_violation\": ",
                   R.Stats.CfiChecked ? "true" : "false",
                   (unsigned long long)R.Stats.CfiCommits,
                   (unsigned long long)R.Stats.CfiViolations);
  appendJsonEscaped(S, R.CfiFirstViolation);
  S += "},\n";
  S += P + formatv("  \"stats\": {\"engine\": \"%s\", \"threads\": %u, "
                   "\"tasks\": %llu, "
                   "\"reference_seconds\": %.6f, \"wall_seconds\": %.6f, "
                   "\"triples_per_second\": %.1f, "
                   "\"pruned\": %s, \"pruned_tasks\": %llu, "
                   "\"pruned_detected\": %llu}\n",
                   R.Stats.Engine, R.Stats.ThreadsUsed,
                   (unsigned long long)R.Stats.Tasks,
                   R.Stats.ReferenceSeconds, R.Stats.WallSeconds,
                   R.Stats.TriplesPerSecond, R.Stats.Pruned ? "true" : "false",
                   (unsigned long long)R.Stats.PrunedTasks,
                   (unsigned long long)R.Stats.PrunedDetected);
  S += P + "}";
  return S;
}
