//===- fault/Campaign.cpp -------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "fault/Campaign.h"

#include "analysis/ZapCoverage.h"
#include "support/StringUtils.h"
#include "support/Unreachable.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

using namespace talft;

const char *talft::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Masked:
    return "masked";
  case Verdict::Detected:
    return "detected";
  case Verdict::SilentCorruption:
    return "silent corruption";
  case Verdict::DissimilarState:
    return "dissimilar state";
  case Verdict::DetectedBadPrefix:
    return "detected (bad prefix)";
  case Verdict::BudgetExhausted:
    return "budget exhausted";
  case Verdict::Stuck:
    return "stuck";
  case Verdict::IllTyped:
    return "ill-typed";
  case Verdict::Recovered:
    return "recovered";
  case Verdict::RecoveryEscalated:
    return "recovery escalated";
  case Verdict::StaticallyMasked:
    return "statically masked";
  }
  talft_unreachable("unknown verdict");
}

const char *talft::verdictJsonKey(Verdict V) {
  switch (V) {
  case Verdict::Masked:
    return "masked";
  case Verdict::Detected:
    return "detected";
  case Verdict::SilentCorruption:
    return "silent_corruption";
  case Verdict::DissimilarState:
    return "dissimilar_state";
  case Verdict::DetectedBadPrefix:
    return "detected_bad_prefix";
  case Verdict::BudgetExhausted:
    return "budget_exhausted";
  case Verdict::Stuck:
    return "stuck";
  case Verdict::IllTyped:
    return "ill_typed";
  case Verdict::Recovered:
    return "recovered";
  case Verdict::RecoveryEscalated:
    return "recovery_escalated";
  case Verdict::StaticallyMasked:
    return "statically_masked";
  }
  talft_unreachable("unknown verdict");
}

uint64_t VerdictTable::total() const {
  uint64_t N = 0;
  for (uint64_t C : Counts)
    N += C;
  return N;
}

uint64_t VerdictTable::benign() const {
  return (*this)[Verdict::Masked] + (*this)[Verdict::Detected] +
         (*this)[Verdict::Recovered] + (*this)[Verdict::RecoveryEscalated] +
         (*this)[Verdict::StaticallyMasked];
}

void VerdictTable::merge(const VerdictTable &O) {
  for (size_t I = 0; I != NumVerdicts; ++I) {
    uint64_t &C = Counts[I];
    C = (O.Counts[I] > UINT64_MAX - C) ? UINT64_MAX : C + O.Counts[I];
  }
}

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

bool isBenign(Verdict V) {
  return V == Verdict::Masked || V == Verdict::Detected ||
         V == Verdict::Recovered || V == Verdict::RecoveryEscalated ||
         V == Verdict::StaticallyMasked;
}

/// The violation text for an abnormal single-fault verdict, matching the
/// wording the serial checker has always produced.
const char *abnormalMessage(Verdict V) {
  switch (V) {
  case Verdict::SilentCorruption:
    return "completed with a DIFFERENT output trace (silent data corruption)";
  case Verdict::DissimilarState:
    return "completed but the final state is not similar to the reference "
           "final state";
  case Verdict::DetectedBadPrefix:
    return "detected, but the faulty output is not a prefix of the "
           "reference output";
  case Verdict::BudgetExhausted:
    return "faulty run exceeded its step budget without detection or "
           "completion";
  case Verdict::Stuck:
    return "faulty run got stuck";
  default:
    talft_unreachable("verdict has no violation message");
  }
}

std::string describeInjection(const FaultSite &Site, int64_t Value,
                              uint64_t AtStep, const char *What) {
  return formatv("inject %s := %lld at step %llu: %s", Site.str().c_str(),
                 (long long)Value, (unsigned long long)AtStep, What);
}

/// Runs \p RunOne over every index in [0, Total) across \p Threads workers.
/// Workers pull fixed-size chunks off an atomic cursor; because each task
/// writes only its own slot, the schedule cannot affect results.
void dispatchTasks(unsigned Threads, uint64_t Total,
                   const std::function<void(uint64_t)> &RunOne,
                   uint64_t ProgressInterval,
                   const std::function<void(const CampaignProgress &)> &Progress) {
  if (Total == 0)
    return;
  if (Threads == 0)
    Threads = std::max(1u, std::thread::hardware_concurrency());
  Threads = (unsigned)std::min<uint64_t>(Threads, Total);
  uint64_t Chunk =
      std::max<uint64_t>(1, std::min<uint64_t>(64, Total / (uint64_t(Threads) * 8)));

  std::atomic<uint64_t> Next{0};
  std::atomic<uint64_t> Completed{0};
  std::mutex ProgressMu;
  auto Work = [&] {
    while (true) {
      uint64_t Begin = Next.fetch_add(Chunk, std::memory_order_relaxed);
      if (Begin >= Total)
        return;
      uint64_t End = std::min(Total, Begin + Chunk);
      for (uint64_t I = Begin; I != End; ++I)
        RunOne(I);
      uint64_t Prev = Completed.fetch_add(End - Begin, std::memory_order_acq_rel);
      uint64_t Done = Prev + (End - Begin);
      if (Progress && ProgressInterval &&
          (Done == Total || Done / ProgressInterval != Prev / ProgressInterval)) {
        std::lock_guard<std::mutex> Lock(ProgressMu);
        Progress({Done, Total});
      }
    }
  };

  if (Threads == 1) {
    Work();
    return;
  }
  std::vector<std::thread> Pool;
  Pool.reserve(Threads - 1);
  for (unsigned T = 0; T + 1 < Threads; ++T)
    Pool.emplace_back(Work);
  Work();
  for (std::thread &Th : Pool)
    Th.join();
}

/// Registers the program mentions anywhere, plus the specials.
std::set<unsigned> mentionedRegisters(const Program &Prog) {
  std::set<unsigned> Used;
  for (const Block &B : Prog.blocks()) {
    for (const ProgInst &PI : B.Insts) {
      const Inst &I = PI.I;
      Used.insert(I.Rd.denseIndex());
      Used.insert(I.Rs.denseIndex());
      if (!I.HasImm)
        Used.insert(I.Rt.denseIndex());
    }
  }
  Used.insert(Reg::dest().denseIndex());
  Used.insert(Reg::pcG().denseIndex());
  Used.insert(Reg::pcB().denseIndex());
  return Used;
}

/// The reference state at one injection step, without typing bookkeeping.
struct UntypedSnapshot {
  MachineState S;
  uint64_t Steps = 0;
  size_t TraceLen = 0;
};

/// One (step, site, corruption) triple of the work list.
struct InjectionTask {
  uint32_t SnapIdx = 0;
  FaultSite Site;
  int64_t Value = 0;
};

/// Tracks whether a faulty run's outputs are still the prefix
/// RefTrace[0, MatchPos): one mismatched output makes both the prefix and
/// equality checks fail forever, so no faulty trace needs materializing.
struct PrefixTracker {
  const OutputTrace &RefTrace;
  size_t MatchPos;
  bool Diverged = false;

  void track(const QueueEntry &Out) {
    if (!Diverged && MatchPos < RefTrace.size() && Out == RefTrace[MatchPos])
      ++MatchPos;
    else
      Diverged = true;
  }
};

/// Classifies one faulty continuation on the raw semantics via \p E. \p S
/// is the reference state at the injection step; \p TraceLen the reference
/// trace length there. The engine's runContinuation reproduces the serial
/// checker's control flow exactly (exit check before budget check) so
/// verdicts agree bit-for-bit with the historical classifier — and, since
/// engines are observationally identical, for every engine.
Verdict classifyContinuation(const ExecEngine &E, Addr ExitAddr,
                             const StepPolicy &Policy, uint64_t ExtraSteps,
                             const OutputTrace &RefTrace,
                             const MachineState &RefFinal, uint64_t RefSteps,
                             MachineState S, uint64_t AtSteps, size_t TraceLen,
                             const FaultSite &Site, int64_t Value) {
  ZapTag Z = ZapTag::color(faultColor(S, Site));
  injectFault(S, Site, Value);

  uint64_t Budget = RefSteps - AtSteps + ExtraSteps;
  PrefixTracker Prefix{RefTrace, TraceLen};
  RunStatus St = E.runContinuation(
      S, ExitAddr, Budget, Policy,
      [&Prefix](const QueueEntry &Out) { Prefix.track(Out); });

  switch (St) {
  case RunStatus::OutOfSteps:
    return Verdict::BudgetExhausted;
  case RunStatus::Stuck:
    return Verdict::Stuck;
  case RunStatus::FaultDetected:
    return Prefix.Diverged ? Verdict::DetectedBadPrefix : Verdict::Detected;
  case RunStatus::Halted:
    break;
  }

  if (Prefix.Diverged || Prefix.MatchPos != RefTrace.size())
    return Verdict::SilentCorruption;
  if (!similarStates(Z, S, RefFinal))
    return Verdict::DissimilarState;
  return Verdict::Masked;
}

/// Outcome of one injection under recovery: a verdict, the violation text
/// when non-empty, and the run's checkpoint/rollback activity.
struct RecoveredOutcome {
  Verdict V = Verdict::Masked;
  std::string Detail;
  RecoveryStats Stats;
};

/// The recovery-mode classifier: same injection, but the continuation
/// runs under the checkpoint/rollback layer. The fault is injected by the
/// step hook at hook time 0, after the RecoveringEngine has captured the
/// pre-injection state as its seed checkpoint — the last commit point the
/// hardware verified before the upset.
RecoveredOutcome classifyRecoveringContinuation(
    const ExecEngine &E, Addr ExitAddr, const StepPolicy &Policy,
    const RecoveryPolicy &RP, uint64_t ExtraSteps, const OutputTrace &RefTrace,
    const MachineState &RefFinal, uint64_t RefSteps, MachineState S,
    uint64_t AtSteps, size_t TraceLen, const FaultSite &Site, int64_t Value) {
  RecoveredOutcome O;
  ZapTag Z = ZapTag::color(faultColor(S, Site));

  PrefixTracker Prefix{RefTrace, TraceLen};
  RecoveringEngine RE(E, RP);
  RecoveringEngine::RunSpec Spec;
  Spec.ExitAddr = ExitAddr;
  Spec.Budget = RefSteps - AtSteps + ExtraSteps;
  Spec.Policy = Policy;
  Spec.OnOutput = [&Prefix](const QueueEntry &Out) { Prefix.track(Out); };
  Spec.Hook = [&Site, Value](MachineState &MS, uint64_t Taken) {
    if (Taken == 0)
      injectFault(MS, Site, Value);
  };
  RecoveryResult RR = RE.run(S, Spec);
  O.Stats = RR.Stats;

  auto Abnormal = [&](Verdict V) {
    O.V = V;
    O.Detail = describeInjection(Site, Value, AtSteps, abnormalMessage(V));
  };
  bool PrefixOk = !Prefix.Diverged;
  switch (RR.Status) {
  case RecoveryStatus::OutOfSteps:
    // Satellite fix: the step budget is shared by rollback replays, so
    // exhausting it mid-recovery is an escalation with its own message,
    // not a plain BudgetExhausted.
    if (RR.Stats.Rollbacks > 0) {
      O.V = Verdict::RecoveryEscalated;
      O.Detail = describeInjection(
          Site, Value, AtSteps,
          formatv("faulty run exceeded its shared step budget during "
                  "recovery (%llu rollback replay%s); escalated to fail-stop",
                  (unsigned long long)RR.Stats.Rollbacks,
                  RR.Stats.Rollbacks == 1 ? "" : "s")
              .c_str());
    } else {
      Abnormal(Verdict::BudgetExhausted);
    }
    return O;
  case RecoveryStatus::Stuck:
    Abnormal(Verdict::Stuck);
    return O;
  case RecoveryStatus::Escalated:
    // Fail-stop with every emitted output verified: the prefix guarantee
    // holds and the escalation is benign. A diverged prefix is the same
    // violation it always was.
    if (PrefixOk)
      O.V = Verdict::RecoveryEscalated;
    else
      Abnormal(Verdict::DetectedBadPrefix);
    return O;
  case RecoveryStatus::Halted:
    break;
  }

  if (Prefix.Diverged || Prefix.MatchPos != RefTrace.size()) {
    Abnormal(Verdict::SilentCorruption);
    return O;
  }
  if (!similarStates(Z, S, RefFinal)) {
    Abnormal(Verdict::DissimilarState);
    return O;
  }
  O.V = RR.Stats.Rollbacks > 0 ? Verdict::Recovered : Verdict::Masked;
  return O;
}

/// Outcome of one typed-mode injection (serial path).
struct TypedOutcome {
  Verdict V = Verdict::Masked;
  std::string Detail;
  uint64_t Typechecked = 0;
};

/// The typed-mode continuation: identical classification, but every state
/// (strided) is re-typed under the corrupted color's zap tag (Theorem 2
/// part 2). Runs through TrackedRun and the shared TypeContext, hence
/// serial-only.
TypedOutcome runTypedInjection(const TheoremConfig &Config, TrackedRun &Run,
                               const TrackedRun::Snapshot &At,
                               const FaultSite &Site, int64_t Corruption,
                               const TrackedRun::Snapshot &RefFinal,
                               const OutputTrace &RefTrace) {
  TypedOutcome O;
  Run.restore(At);
  Run.injectSingleFault(Site, Corruption);

  auto Fail = [&](Verdict V, const char *What) {
    O.V = V;
    O.Detail = describeInjection(Site, Corruption, At.Steps, What);
  };

  uint64_t TypeStride = std::max<uint64_t>(1, Config.FaultyTypeCheckStride);
  uint64_t Budget = RefFinal.Steps - At.Steps + Config.ExtraSteps;
  uint64_t Taken = 0;
  uint64_t SinceInjection = 0;
  while (true) {
    if (SinceInjection % TypeStride == 0) {
      if (Error E = Run.checkTyped()) {
        Fail(Verdict::IllTyped,
             ("faulty state not well-typed: " + E.message()).c_str());
        return O;
      }
      ++O.Typechecked;
    }
    if (Run.atExitBlock())
      break;
    if (Taken >= Budget) {
      Fail(Verdict::BudgetExhausted, abnormalMessage(Verdict::BudgetExhausted));
      return O;
    }
    StepResult SR = Run.stepOnce();
    ++Taken;
    ++SinceInjection;
    if (SR.Status == StepStatus::Stuck) {
      Fail(Verdict::Stuck, abnormalMessage(Verdict::Stuck));
      return O;
    }
    if (SR.Status == StepStatus::Fault) {
      if (isTracePrefix(Run.trace(), RefTrace)) {
        O.V = Verdict::Detected;
      } else {
        Fail(Verdict::DetectedBadPrefix,
             abnormalMessage(Verdict::DetectedBadPrefix));
      }
      return O;
    }
  }

  if (!(Run.trace() == RefTrace)) {
    Fail(Verdict::SilentCorruption, abnormalMessage(Verdict::SilentCorruption));
    return O;
  }
  if (!similarStates(Run.zapTag(), Run.state(), RefFinal.S)) {
    Fail(Verdict::DissimilarState, abnormalMessage(Verdict::DissimilarState));
    return O;
  }
  O.V = Verdict::Masked;
  return O;
}

/// Builds the static pruning oracle when the caller asked for one and the
/// analysis can vouch for the program (fully resolved CFG). Analysis
/// failures quietly fall back to the unpruned sweep — pruning is an
/// optimization, never a requirement.
std::optional<analysis::ZapCoverage>
buildPruneOracle(const Program &Prog, const CampaignOptions &Opts) {
  if (!Opts.Prune)
    return std::nullopt;
  Expected<analysis::ZapCoverage> Z = analysis::ZapCoverage::compute(Prog);
  if (!Z || !Z->pruneSound())
    return std::nullopt;
  return std::move(*Z);
}

/// Phase 2: the full work list in the order the serial checker visits it,
/// so merged violation lists match it exactly. \p StateAt resolves the
/// reference state of snapshot \p SI (typed and untyped campaigns store
/// snapshots differently). With \p Prune, provably-dead register sites are
/// tallied into \p Table as StaticallyMasked instead of being enumerated —
/// exactly the triples the unpruned sweep would have classified, so the
/// table total is invariant under pruning.
std::vector<InjectionTask>
enumerateTasks(const Program &Prog, const TheoremConfig &Config,
               size_t NumSnaps,
               const std::function<const MachineState &(size_t)> &StateAt,
               const analysis::ZapCoverage *Prune, VerdictTable &Table) {
  std::set<unsigned> UsedRegs;
  if (Config.OnlyMentionedRegisters)
    UsedRegs = mentionedRegisters(Prog);
  std::vector<int64_t> Corruptions = representativeCorruptions(Prog);

  std::vector<InjectionTask> Tasks;
  for (size_t SI = 0; SI != NumSnaps; ++SI) {
    const MachineState &S = StateAt(SI);
    // The pcs are only bumped when the next rule fires, so pcG's payload
    // is the address of the instruction the next transition executes —
    // whether or not it is already fetched into IR.
    Addr Here = S.pcG().N;
    for (const FaultSite &Site : enumerateFaultSites(S)) {
      if (Config.OnlyMentionedRegisters &&
          Site.K == FaultSite::Kind::Register &&
          !UsedRegs.count(Site.R.denseIndex()))
        continue;
      int64_t Current = currentValueAt(S, Site);
      if (Prune && Site.K == FaultSite::Kind::Register &&
          Prune->deadRegisterSite(Here, Site.R)) {
        for (int64_t Corruption : Corruptions)
          if (Corruption != Current)
            ++Table[Verdict::StaticallyMasked];
        continue;
      }
      for (int64_t Corruption : Corruptions) {
        if (Corruption == Current)
          continue; // reg-zap replaces the value with a *different* one.
        Tasks.push_back({(uint32_t)SI, Site, Corruption});
      }
    }
  }
  return Tasks;
}

/// Phase 3, untyped: classifies every task in parallel on the raw
/// semantics — with or without the recovery layer — and merges verdicts,
/// violations and recovery stats into \p R deterministically.
void classifyUntypedTasks(const Program &Prog, const TheoremConfig &Config,
                          const CampaignOptions &Opts,
                          const std::vector<InjectionTask> &Tasks,
                          const std::vector<UntypedSnapshot> &Snaps,
                          const OutputTrace &RefTrace,
                          const MachineState &RefFinal, uint64_t RefSteps,
                          CampaignResult &R) {
  auto AddViolation = [&](std::string V) {
    R.Ok = false;
    if (R.Violations.size() < Config.MaxViolations)
      R.Violations.push_back(std::move(V));
  };

  const ExecEngine &E = Opts.Engine ? *Opts.Engine : referenceEngine();
  R.Stats.Engine = E.name();
  unsigned Threads = Opts.Threads
                         ? Opts.Threads
                         : std::max(1u, std::thread::hardware_concurrency());
  R.Stats.ThreadsUsed =
      (unsigned)std::min<uint64_t>(Threads, std::max<size_t>(1, Tasks.size()));
  Expected<MachineState> Initial = Prog.initialState();
  if (Error Err = Initial.takeError()) {
    AddViolation("cannot start: " + Err.message());
    return;
  }

  bool Recover = Config.Recovery.Enabled;
  Addr ExitAddr = Prog.exitAddress();
  std::vector<uint8_t> Verdicts(Tasks.size(), 0);
  std::vector<std::string> Details(Tasks.size());
  std::vector<RecoveryStats> TaskStats(Recover ? Tasks.size() : 0);
  auto RunOne = [&](uint64_t I) {
    const InjectionTask &T = Tasks[I];
    const UntypedSnapshot &Snap = Snaps[T.SnapIdx];
    MachineState S;
    size_t TraceLen;
    if (Opts.Resume == ResumeMode::Snapshot) {
      S = Snap.S;
      TraceLen = Snap.TraceLen;
    } else {
      S = *Initial;
      OutputTrace Prefix;
      E.replaySteps(S, Snap.Steps, Prefix, Config.Policy);
      TraceLen = Prefix.size();
    }
    if (Recover) {
      RecoveredOutcome O = classifyRecoveringContinuation(
          E, ExitAddr, Config.Policy, Config.Recovery, Config.ExtraSteps,
          RefTrace, RefFinal, RefSteps, std::move(S), Snap.Steps, TraceLen,
          T.Site, T.Value);
      Verdicts[I] = (uint8_t)O.V;
      Details[I] = std::move(O.Detail);
      TaskStats[I] = O.Stats;
    } else {
      Verdict V = classifyContinuation(
          E, ExitAddr, Config.Policy, Config.ExtraSteps, RefTrace, RefFinal,
          RefSteps, std::move(S), Snap.Steps, TraceLen, T.Site, T.Value);
      Verdicts[I] = (uint8_t)V;
      if (!isBenign(V))
        Details[I] =
            describeInjection(T.Site, T.Value, Snap.Steps, abnormalMessage(V));
    }
  };
  dispatchTasks(Threads, Tasks.size(), RunOne, Opts.ProgressInterval,
                Opts.Progress);

  // Deterministic merge: counters sum, violations keep enumeration order.
  for (size_t I = 0; I != Tasks.size(); ++I) {
    R.Table[(Verdict)Verdicts[I]] += 1;
    if (!Details[I].empty())
      AddViolation(std::move(Details[I]));
    if (Recover)
      R.Recovery.merge(TaskStats[I]);
  }
}

} // namespace

CampaignResult talft::runFaultToleranceCampaign(TypeContext &TC,
                                                const CheckedProgram &CP,
                                                const TheoremConfig &Config,
                                                const CampaignOptions &Opts) {
  CampaignResult R;
  auto AddViolation = [&](std::string V) {
    R.Ok = false;
    if (R.Violations.size() < Config.MaxViolations)
      R.Violations.push_back(std::move(V));
  };

  // Phase 1 (serial): the reference execution, snapshotting every
  // injection step. Typed campaigns keep full TrackedRun snapshots (state
  // plus closing substitution); classification-only campaigns keep just
  // the machine state and the trace length.
  Clock::time_point RefStart = Clock::now();
  bool Typed = Config.TypeCheckFaultyStates;
  if (Typed && Config.Recovery.Enabled) {
    AddViolation("recovery cannot be combined with TypeCheckFaultyStates: "
                 "rollback replays run on the raw semantics");
    return R;
  }
  uint64_t Stride = std::max<uint64_t>(1, Config.InjectionStride);

  TrackedRun Run(TC, CP, Config.Policy);
  if (Error E = Run.start()) {
    AddViolation("cannot start: " + E.message());
    return R;
  }

  std::vector<TrackedRun::Snapshot> TypedSnaps;
  std::vector<UntypedSnapshot> Snaps;
  auto TakeSnapshot = [&] {
    if (Typed)
      TypedSnaps.push_back(Run.snapshot());
    else
      Snaps.push_back({Run.state(), Run.steps(), Run.trace().size()});
  };

  TakeSnapshot(); // Step 0 is always an injection point.
  while (!Run.atExitBlock()) {
    if (Run.steps() >= Config.MaxSteps) {
      AddViolation("reference run exceeded MaxSteps");
      return R;
    }
    StepResult SR = Run.stepOnce();
    if (SR.Status != StepStatus::Ok) {
      AddViolation(formatv("reference run failed at step %llu (%s)",
                           (unsigned long long)Run.steps(),
                           SR.Status == StepStatus::Stuck ? "stuck"
                                                          : "false positive"));
      return R;
    }
    if (Run.steps() % Stride == 0)
      TakeSnapshot();
  }
  TrackedRun::Snapshot RefFinal = Run.snapshot();
  R.ReferenceSteps = RefFinal.Steps;
  R.ReferenceTrace = RefFinal.Trace;

  std::optional<analysis::ZapCoverage> Oracle =
      buildPruneOracle(*CP.Prog, Opts);
  std::vector<InjectionTask> Tasks = enumerateTasks(
      *CP.Prog, Config, Typed ? TypedSnaps.size() : Snaps.size(),
      [&](size_t SI) -> const MachineState & {
        return Typed ? TypedSnaps[SI].S : Snaps[SI].S;
      },
      Oracle ? &*Oracle : nullptr, R.Table);
  R.Stats.ReferenceSeconds = secondsSince(RefStart);
  R.Stats.Tasks = Tasks.size();
  R.Stats.Pruned = Oracle.has_value();
  R.Stats.PrunedTasks = R.Table[Verdict::StaticallyMasked];

  // Phase 3: classify every continuation. Typed campaigns run serially
  // through the shared TypeContext; classification-only campaigns fan out.
  Clock::time_point InjectStart = Clock::now();
  if (Typed) {
    // Typed campaigns re-check ⊢Z S through TrackedRun, which owns the
    // typing bookkeeping; they always replay on the reference semantics.
    R.Stats.Engine = referenceEngine().name();
    R.Stats.ThreadsUsed = 1;
    uint64_t Done = 0;
    for (const InjectionTask &T : Tasks) {
      const TrackedRun::Snapshot *At = &TypedSnaps[T.SnapIdx];
      TrackedRun::Snapshot Replayed;
      if (Opts.Resume == ResumeMode::Replay) {
        // Rebuild the snapshot by re-executing the reference prefix.
        TrackedRun Fresh(TC, CP, Config.Policy);
        if (Error E = Fresh.start()) {
          AddViolation("cannot start: " + E.message());
          return R;
        }
        while (Fresh.steps() < TypedSnaps[T.SnapIdx].Steps)
          Fresh.stepOnce();
        Replayed = Fresh.snapshot();
        At = &Replayed;
      }
      TypedOutcome O = runTypedInjection(Config, Run, *At, T.Site, T.Value,
                                         RefFinal, RefFinal.Trace);
      R.Table[O.V] += 1;
      R.StatesTypechecked += O.Typechecked;
      if (!isBenign(O.V))
        AddViolation(std::move(O.Detail));
      ++Done;
      if (Opts.Progress && Opts.ProgressInterval &&
          (Done % Opts.ProgressInterval == 0 || Done == Tasks.size()))
        Opts.Progress({Done, Tasks.size()});
    }
  } else {
    classifyUntypedTasks(*CP.Prog, Config, Opts, Tasks, Snaps, RefFinal.Trace,
                         RefFinal.S, RefFinal.Steps, R);
  }

  R.Stats.WallSeconds = secondsSince(InjectStart);
  if (R.Stats.WallSeconds > 0)
    R.Stats.TriplesPerSecond = (double)Tasks.size() / R.Stats.WallSeconds;
  return R;
}

CampaignResult talft::runSingleFaultCampaign(const Program &Prog,
                                             const TheoremConfig &Config,
                                             const CampaignOptions &Opts) {
  CampaignResult R;
  auto AddViolation = [&](std::string V) {
    R.Ok = false;
    if (R.Violations.size() < Config.MaxViolations)
      R.Violations.push_back(std::move(V));
  };
  if (Config.TypeCheckFaultyStates) {
    AddViolation("the raw-semantics sweep cannot re-typecheck faulty states; "
                 "use runFaultToleranceCampaign on a checked program");
    return R;
  }

  // Phase 1 (serial): the reference execution on the raw semantics,
  // snapshotting every injection step — the same loop shape as the typed
  // campaign's, so the violation wording matches.
  Clock::time_point RefStart = Clock::now();
  uint64_t Stride = std::max<uint64_t>(1, Config.InjectionStride);
  const ExecEngine &E = Opts.Engine ? *Opts.Engine : referenceEngine();

  Expected<MachineState> S0 = Prog.initialState();
  if (Error Err = S0.takeError()) {
    AddViolation("cannot start: " + Err.message());
    return R;
  }
  MachineState S = *S0;
  Addr ExitAddr = Prog.exitAddress();
  OutputTrace Trace;
  uint64_t Steps = 0;
  std::vector<UntypedSnapshot> Snaps;
  Snaps.push_back({S, 0, 0}); // Step 0 is always an injection point.
  while (!atExit(S, ExitAddr)) {
    if (Steps >= Config.MaxSteps) {
      AddViolation("reference run exceeded MaxSteps");
      return R;
    }
    StepResult SR = E.step(S, Config.Policy);
    ++Steps;
    if (SR.Output)
      Trace.push_back(*SR.Output);
    if (SR.Status != StepStatus::Ok) {
      AddViolation(formatv("reference run failed at step %llu (%s)",
                           (unsigned long long)Steps,
                           SR.Status == StepStatus::Stuck ? "stuck"
                                                          : "false positive"));
      return R;
    }
    if (Steps % Stride == 0)
      Snaps.push_back({S, Steps, Trace.size()});
  }
  R.ReferenceSteps = Steps;
  R.ReferenceTrace = Trace;

  std::optional<analysis::ZapCoverage> Oracle = buildPruneOracle(Prog, Opts);
  std::vector<InjectionTask> Tasks =
      enumerateTasks(Prog, Config, Snaps.size(),
                     [&](size_t SI) -> const MachineState & {
                       return Snaps[SI].S;
                     },
                     Oracle ? &*Oracle : nullptr, R.Table);
  R.Stats.ReferenceSeconds = secondsSince(RefStart);
  R.Stats.Tasks = Tasks.size();
  R.Stats.Pruned = Oracle.has_value();
  R.Stats.PrunedTasks = R.Table[Verdict::StaticallyMasked];

  Clock::time_point InjectStart = Clock::now();
  classifyUntypedTasks(Prog, Config, Opts, Tasks, Snaps, Trace, S, Steps, R);
  R.Stats.WallSeconds = secondsSince(InjectStart);
  if (R.Stats.WallSeconds > 0)
    R.Stats.TriplesPerSecond = (double)Tasks.size() / R.Stats.WallSeconds;
  return R;
}

namespace {

/// Classifies one explicit injection plan on the raw semantics via \p E.
Verdict classifyPlan(const ExecEngine &E, const Program &Prog,
                     const StepPolicy &Policy, uint64_t ExtraSteps,
                     const OutputTrace &RefTrace, const MachineState &RefFinal,
                     uint64_t RefSteps, MachineState S,
                     const InjectionPlan &Plan) {
  PrefixTracker Prefix{RefTrace, 0};

  uint64_t Now = 0;
  std::optional<Color> ZapColor;
  bool MixedColors = false;
  for (const InjectionPoint &P : Plan) {
    assert(P.Step >= Now && "injection plan must be step-ordered");
    // Fault and stuck transitions never emit output, so match-tracking the
    // chunk after the replay is equivalent to tracking each step inline.
    OutputTrace Chunk;
    ReplayResult RR = E.replaySteps(S, P.Step - Now, Chunk, Policy);
    Now += RR.Taken;
    for (const QueueEntry &Out : Chunk)
      Prefix.track(Out);
    if (RR.Last == StepStatus::Stuck)
      return Verdict::Stuck;
    if (RR.Last == StepStatus::Fault)
      return Prefix.Diverged ? Verdict::DetectedBadPrefix : Verdict::Detected;
    Color C = faultColor(S, P.Site);
    if (ZapColor && *ZapColor != C)
      MixedColors = true;
    ZapColor = C;
    injectFault(S, P.Site, P.Value);
  }

  uint64_t Budget = (RefSteps > Now ? RefSteps - Now : 0) + ExtraSteps;
  RunStatus St = E.runContinuation(
      S, Prog.exitAddress(), Budget, Policy,
      [&Prefix](const QueueEntry &Out) { Prefix.track(Out); });
  switch (St) {
  case RunStatus::OutOfSteps:
    return Verdict::BudgetExhausted;
  case RunStatus::Stuck:
    return Verdict::Stuck;
  case RunStatus::FaultDetected:
    return Prefix.Diverged ? Verdict::DetectedBadPrefix : Verdict::Detected;
  case RunStatus::Halted:
    break;
  }

  if (Prefix.Diverged || Prefix.MatchPos != RefTrace.size())
    return Verdict::SilentCorruption;
  // Similarity is indexed by a single zap color; a cross-color plan has no
  // such index, so it classifies on the trace alone.
  if (!MixedColors && ZapColor &&
      !similarStates(ZapTag::color(*ZapColor), S, RefFinal))
    return Verdict::DissimilarState;
  return Verdict::Masked;
}

std::string describePlan(const InjectionPlan &Plan, const char *What) {
  std::string S = "plan [";
  for (size_t I = 0; I != Plan.size(); ++I) {
    if (I)
      S += "; ";
    S += formatv("%s := %lld at step %llu", Plan[I].Site.str().c_str(),
                 (long long)Plan[I].Value, (unsigned long long)Plan[I].Step);
  }
  S += "]: ";
  S += What;
  return S;
}

} // namespace

CampaignResult talft::runInjectionPlans(const PlanCampaign &Spec,
                                        const CampaignOptions &Opts) {
  CampaignResult R;
  assert(Spec.Prog && "plan campaign needs a program");

  const ExecEngine &E = Opts.Engine ? *Opts.Engine : referenceEngine();
  R.Stats.Engine = E.name();

  Clock::time_point RefStart = Clock::now();
  Expected<MachineState> S0 = Spec.Prog->initialState();
  if (!S0) {
    R.Ok = false;
    R.Violations.push_back("cannot build initial state: " + S0.message());
    return R;
  }
  MachineState Final = *S0;
  RunResult RefRun = E.run(Final, Spec.Prog->exitAddress(),
                           Spec.MaxReferenceSteps, Spec.Policy);
  if (RefRun.Status != RunStatus::Halted) {
    R.Ok = false;
    R.Violations.push_back(formatv("reference run did not halt (%s after %llu steps)",
                                   runStatusName(RefRun.Status),
                                   (unsigned long long)RefRun.Steps));
    return R;
  }
  R.ReferenceSteps = RefRun.Steps;
  R.ReferenceTrace = RefRun.Trace;
  R.Stats.ReferenceSeconds = secondsSince(RefStart);
  R.Stats.Tasks = Spec.Plans.size();

  Clock::time_point InjectStart = Clock::now();
  unsigned Threads = Opts.Threads ? Opts.Threads
                                  : std::max(1u, std::thread::hardware_concurrency());
  R.Stats.ThreadsUsed = (unsigned)std::min<uint64_t>(
      Threads, std::max<size_t>(1, Spec.Plans.size()));

  std::vector<uint8_t> Verdicts(Spec.Plans.size(), 0);
  auto RunOne = [&](uint64_t I) {
    Verdicts[I] = (uint8_t)classifyPlan(E, *Spec.Prog, Spec.Policy,
                                        Spec.ExtraSteps, RefRun.Trace, Final,
                                        RefRun.Steps, *S0, Spec.Plans[I]);
  };
  dispatchTasks(Threads, Spec.Plans.size(), RunOne, Opts.ProgressInterval,
                Opts.Progress);

  for (size_t I = 0; I != Spec.Plans.size(); ++I) {
    Verdict V = (Verdict)Verdicts[I];
    R.Table[V] += 1;
    // Multi-fault plans legitimately produce SilentCorruption (that is what
    // the double-fault ablation demonstrates); only a wedged machine is a
    // campaign-level violation here.
    if (V == Verdict::Stuck || V == Verdict::BudgetExhausted) {
      R.Ok = false;
      if (R.Violations.size() < 16)
        R.Violations.push_back(describePlan(Spec.Plans[I], abnormalMessage(V)));
    }
  }

  R.Stats.WallSeconds = secondsSince(InjectStart);
  if (R.Stats.WallSeconds > 0)
    R.Stats.TriplesPerSecond =
        (double)Spec.Plans.size() / R.Stats.WallSeconds;
  return R;
}

namespace {

void appendJsonEscaped(std::string &Out, const std::string &In) {
  Out += '"';
  for (char C : In) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if ((unsigned char)C < 0x20)
        Out += formatv("\\u%04x", (unsigned)(unsigned char)C);
      else
        Out += C;
    }
  }
  Out += '"';
}

} // namespace

std::string talft::campaignToJson(const CampaignResult &R, unsigned Indent) {
  std::string P(Indent, ' ');
  std::string S;
  S += P + "{\n";
  S += P + formatv("  \"ok\": %s,\n", R.Ok ? "true" : "false");
  S += P + formatv("  \"reference_steps\": %llu,\n",
                   (unsigned long long)R.ReferenceSteps);
  S += P + formatv("  \"injections\": %llu,\n",
                   (unsigned long long)R.Table.total());
  S += P + "  \"verdicts\": {";
  for (size_t I = 0; I != NumVerdicts; ++I) {
    if (I)
      S += ", ";
    S += formatv("\"%s\": %llu", verdictJsonKey((Verdict)I),
                 (unsigned long long)R.Table.Counts[I]);
  }
  S += "},\n";
  S += P + formatv("  \"states_typechecked\": %llu,\n",
                   (unsigned long long)R.StatesTypechecked);
  S += P + formatv("  \"recovery\": {\"rollbacks\": %llu, "
                   "\"checkpoints\": %llu, \"replayed_outputs\": %llu},\n",
                   (unsigned long long)R.Recovery.Rollbacks,
                   (unsigned long long)R.Recovery.Checkpoints,
                   (unsigned long long)R.Recovery.ReplayedOutputs);
  S += P + "  \"violations\": [";
  for (size_t I = 0; I != R.Violations.size(); ++I) {
    S += I ? ", " : "";
    appendJsonEscaped(S, R.Violations[I]);
  }
  S += "],\n";
  S += P + formatv("  \"stats\": {\"engine\": \"%s\", \"threads\": %u, "
                   "\"tasks\": %llu, "
                   "\"reference_seconds\": %.6f, \"wall_seconds\": %.6f, "
                   "\"triples_per_second\": %.1f, "
                   "\"pruned\": %s, \"pruned_tasks\": %llu}\n",
                   R.Stats.Engine, R.Stats.ThreadsUsed,
                   (unsigned long long)R.Stats.Tasks,
                   R.Stats.ReferenceSeconds, R.Stats.WallSeconds,
                   R.Stats.TriplesPerSecond, R.Stats.Pruned ? "true" : "false",
                   (unsigned long long)R.Stats.PrunedTasks);
  S += P + "}";
  return S;
}
