//===- fault/TrackedRun.cpp -----------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "fault/TrackedRun.h"

#include <cstring>

using namespace talft;

Error TrackedRun::start() {
  Expected<MachineState> Init = CP.Prog->initialState();
  if (Error E = Init.moveInto(S))
    return E;
  Expected<Subst> C = initialClosing(TC, CP, S);
  if (Error E = C.moveInto(Closing))
    return E;
  return Error::success();
}

StepResult TrackedRun::stepOnce() {
  assert(!S.isFault() && "stepping past the fault state");

  bool WasExecute = S.IR.has_value();
  Addr A = anchor();

  StepResult SR = step(S, Policy);
  if (SR.Status == StepStatus::Stuck)
    return SR;
  ++Steps;
  if (SR.Output)
    Trace.push_back(*SR.Output);
  if (SR.Status == StepStatus::Fault)
    return SR;

  // Compose the recorded substitution when the instruction at A committed
  // a transfer, or completed a block and fell through into the next one.
  if (WasExecute) {
    bool Transferred = std::strcmp(SR.Rule, "jmpB") == 0 ||
                       std::strcmp(SR.Rule, "bzB-taken") == 0;
    if (Transferred) {
      auto It = CP.TransferAt.find(A);
      assert(It != CP.TransferAt.end() &&
             "committed transfer without a recorded substitution");
      Closing = It->second.composeWith(TC.exprs(), Closing);
    } else if (auto It = CP.FallthroughAt.find(A);
               It != CP.FallthroughAt.end()) {
      Closing = It->second.composeWith(TC.exprs(), Closing);
    }
  }
  return SR;
}

void TrackedRun::injectSingleFault(const FaultSite &Site, int64_t NewValue) {
  assert(!Injected && "the SEU model allows at most one fault per run");
  Injected = true;
  Z = ZapTag::color(faultColor(S, Site));
  injectFault(S, Site, NewValue);
}
