//===- fault/FaultInjector.h - The fault model (rules reg-zap, Q-zap) -----===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's fault model is three operational rules, each a k=1
/// transition under the Single Event Upset assumption:
///
///   reg-zap: any register's payload is replaced by an arbitrary value
///            (the fictional color tag is preserved);
///   Q-zap1:  the address component of any store-queue entry is replaced;
///   Q-zap2:  the value component of any store-queue entry is replaced.
///
/// Code memory and value memory are inside the protected sphere and are
/// never corrupted.
///
/// reg-zap quantifies over all 2^64 replacement values; the exhaustive
/// checker instead tests the *representative set* of values that can
/// change which operational rule fires next: zero and nonzero, valid and
/// invalid code addresses, valid and invalid data addresses, and near-miss
/// offsets of each. Two corruptions that drive every comparison and
/// domain-membership test in the semantics to the same outcomes induce the
/// same rule firings, so covering all equivalence classes of those tests
/// covers the model.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_FAULT_FAULTINJECTOR_H
#define TALFT_FAULT_FAULTINJECTOR_H

#include "isa/MachineState.h"
#include "tal/Program.h"

#include <string>
#include <vector>

namespace talft {

/// Where a single fault strikes.
struct FaultSite {
  enum class Kind : uint8_t { Register, QueueAddress, QueueValue };
  Kind K = Kind::Register;
  /// Register faults: which register (any, including d and the pcs).
  Reg R;
  /// Queue faults: which entry (0 = front).
  size_t QueueIndex = 0;

  static FaultSite reg(Reg R) {
    FaultSite S;
    S.K = Kind::Register;
    S.R = R;
    return S;
  }
  static FaultSite queueAddress(size_t I) {
    FaultSite S;
    S.K = Kind::QueueAddress;
    S.QueueIndex = I;
    return S;
  }
  static FaultSite queueValue(size_t I) {
    FaultSite S;
    S.K = Kind::QueueValue;
    S.QueueIndex = I;
    return S;
  }

  std::string str() const;
};

/// All fault sites of a state: every register, and both components of
/// every queue entry.
std::vector<FaultSite> enumerateFaultSites(const MachineState &S);

/// The color of the computation a fault at \p Site corrupts (the zap tag
/// of the resulting state). Queue entries are green structures.
Color faultColor(const MachineState &S, const FaultSite &Site);

/// Applies the fault: replaces the payload at \p Site with \p NewValue,
/// preserving color tags (rules reg-zap / Q-zap1 / Q-zap2).
void injectFault(MachineState &S, const FaultSite &Site, int64_t NewValue);

/// The current payload at \p Site (the fault model requires the new value
/// to differ).
int64_t currentValueAt(const MachineState &S, const FaultSite &Site);

/// The representative corruption values for \p Prog: zero, ±1, small and
/// large sentinels, every block entry address and each ±1, and every data
/// cell address and each ±1.
std::vector<int64_t> representativeCorruptions(const Program &Prog);

} // namespace talft

#endif // TALFT_FAULT_FAULTINJECTOR_H
