//===- fault/Similarity.h - Similarity relations (Figure 9) ---------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The similarity relations relate a faulty execution's states to the
/// fault-free execution's states, indexed by a zap tag Z:
///
///   - with Z empty, related objects are identical;
///   - with Z = c, values colored c may differ arbitrarily (they are the
///     ones a c-colored fault can have corrupted), while everything else —
///     values of the other color, code memory, value memory, the
///     instruction register — must be identical. Queue entries are green.
///
/// Fault Tolerance (Theorem 4) states that an undetected single fault
/// leaves the final state similar (for some color) to the fault-free
/// final state, with an identical output trace.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_FAULT_SIMILARITY_H
#define TALFT_FAULT_SIMILARITY_H

#include "isa/MachineState.h"
#include "types/ZapTag.h"

namespace talft {

/// v1 simZ v2 (rules sim-val / sim-val-zap): identical, or same color
/// matching the zap tag.
bool similarValues(ZapTag Z, Value A, Value B);

/// R simZ R' (rule sim-R): pointwise over every register.
bool similarRegisterFiles(ZapTag Z, const RegisterFile &A,
                          const RegisterFile &B);

/// Q simZ Q' (rules sim-Q-empty / sim-Q): pointwise; entries are green.
bool similarQueues(ZapTag Z, const StoreQueue &A, const StoreQueue &B);

/// S1 simZ S2 (rule sim-S): same code, memory and instruction register;
/// similar register files and queues. The fault state is similar only to
/// itself.
bool similarStates(ZapTag Z, const MachineState &A, const MachineState &B);

} // namespace talft

#endif // TALFT_FAULT_SIMILARITY_H
