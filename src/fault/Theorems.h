//===- fault/Theorems.h - Executable checkers for the formal results ------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4 of the paper proves four results about well-typed programs:
///
///   Theorem 1 (Progress): a well-typed state steps; with an empty zap tag
///     the step does not reach the fault state.
///   Theorem 2 (Preservation): non-faulty steps preserve ⊢Z; a faulty step
///     from ⊢ S yields ⊢c S' for the corrupted color c.
///   Corollary 3 (No False Positives): a fault-free execution of a
///     well-typed program never signals a fault.
///   Theorem 4 (Fault Tolerance): a single fault either leaves the output
///     trace identical (and the final state similar modulo the corrupted
///     color) or is detected, in which case the faulty output is a prefix
///     of the fault-free output.
///
/// These checkers verify every quantifier instance of the theorems on a
/// concrete checked program with a bounded reference execution: every
/// reachable state is re-typed, and every (step, fault site, representative
/// corruption value) triple is injected and classified.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_FAULT_THEOREMS_H
#define TALFT_FAULT_THEOREMS_H

#include "fault/Similarity.h"
#include "fault/TrackedRun.h"
#include "recover/Checkpoint.h"

#include <cstdint>
#include <string>
#include <vector>

namespace talft {

/// Knobs for the theorem checkers.
struct TheoremConfig {
  /// Budget for the fault-free reference execution.
  uint64_t MaxSteps = 100000;
  /// Extra budget granted to faulty continuations beyond the reference
  /// length (a corrupted state may need a few more steps to reach a
  /// detection point).
  uint64_t ExtraSteps = 4096;
  /// Inject at every Nth reference state (1 = every state).
  uint64_t InjectionStride = 1;
  /// Restrict register fault sites to registers the program mentions,
  /// plus d and the program counters. Faults in never-read registers are
  /// trivially masked; skipping them changes no verdict.
  bool OnlyMentionedRegisters = true;
  /// Re-type every state of faulty continuations (Theorem 2 part 2 and
  /// Theorem 1 part 2). Expensive; stride applies.
  bool TypeCheckFaultyStates = false;
  uint64_t FaultyTypeCheckStride = 1;
  /// Cap on retained violation descriptions.
  size_t MaxViolations = 16;
  StepPolicy Policy;
  /// Checkpoint/rollback recovery for the faulty continuations
  /// (recover/RecoveringEngine.h). Disabled, the sweep is the classic
  /// fail-stop Theorem 4 check; enabled, detection triggers rollback and
  /// the benign verdicts become Masked / Recovered / RecoveryEscalated.
  /// Recovery replays run on the raw semantics, so it cannot be combined
  /// with TypeCheckFaultyStates.
  RecoveryPolicy Recovery;
};

/// Aggregated verdicts.
struct TheoremReport {
  bool Ok = true;
  uint64_t ReferenceSteps = 0;
  OutputTrace ReferenceTrace;
  uint64_t StatesTypechecked = 0;
  uint64_t InjectionsTested = 0;
  /// Faulty runs ending in hardware detection (output was a prefix).
  uint64_t DetectedFaults = 0;
  /// Faulty runs completing with identical output (fault was masked).
  uint64_t MaskedFaults = 0;
  /// Recovery campaigns only: faulty runs that rolled back and completed
  /// with the output trace bit-identical to the reference.
  uint64_t RecoveredFaults = 0;
  /// Recovery campaigns only: faulty runs the recovery layer escalated
  /// back to fail-stop (retry budget exhausted or replay divergence); the
  /// emitted output remained a verified reference prefix.
  uint64_t EscalatedFaults = 0;
  std::vector<std::string> Violations;

  void addViolation(std::string V, size_t Cap) {
    Ok = false;
    if (Violations.size() < Cap)
      Violations.push_back(std::move(V));
  }
};

/// Runs the fault-free execution, re-typing every state (Theorems 1 and 2
/// part 1) and confirming no fault is signaled (Corollary 3) and the
/// machine never gets stuck (Progress).
TheoremReport checkFaultFreeExecution(TypeContext &TC,
                                      const CheckedProgram &CP,
                                      const TheoremConfig &Config);

class ExecEngine;

/// The exhaustive single-fault sweep of Theorem 4 (optionally also
/// checking faulty-run preservation, Theorem 2 part 2). \p Engine selects
/// the execution engine faulty continuations replay on (null = the
/// structural reference interpreter); verdicts are engine-independent by
/// construction (see sim/ExecEngine.h).
TheoremReport checkFaultTolerance(TypeContext &TC, const CheckedProgram &CP,
                                  const TheoremConfig &Config,
                                  const ExecEngine *Engine = nullptr);

} // namespace talft

#endif // TALFT_FAULT_THEOREMS_H
