//===- fault/FaultInjector.cpp --------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "fault/FaultInjector.h"

#include "support/StringUtils.h"
#include "support/Unreachable.h"

#include <algorithm>

using namespace talft;

std::string FaultSite::str() const {
  switch (K) {
  case Kind::Register:
    return "reg-zap " + R.str();
  case Kind::QueueAddress:
    return formatv("Q-zap1 (entry %zu address)", QueueIndex);
  case Kind::QueueValue:
    return formatv("Q-zap2 (entry %zu value)", QueueIndex);
  }
  talft_unreachable("unknown fault site kind");
}

std::vector<FaultSite> talft::enumerateFaultSites(const MachineState &S) {
  std::vector<FaultSite> Sites;
  Sites.reserve(Reg::NumRegs + 2 * S.Queue.size());
  for (unsigned I = 0; I != NumGeneralRegs; ++I)
    Sites.push_back(FaultSite::reg(Reg::general(I)));
  Sites.push_back(FaultSite::reg(Reg::dest()));
  Sites.push_back(FaultSite::reg(Reg::pcG()));
  Sites.push_back(FaultSite::reg(Reg::pcB()));
  for (size_t I = 0, E = S.Queue.size(); I != E; ++I) {
    Sites.push_back(FaultSite::queueAddress(I));
    Sites.push_back(FaultSite::queueValue(I));
  }
  return Sites;
}

Color talft::faultColor(const MachineState &S, const FaultSite &Site) {
  if (Site.K == FaultSite::Kind::Register)
    return S.Regs.col(Site.R);
  // The store queue holds green data (it is filled by stG).
  return Color::Green;
}

int64_t talft::currentValueAt(const MachineState &S, const FaultSite &Site) {
  switch (Site.K) {
  case FaultSite::Kind::Register:
    return S.Regs.val(Site.R);
  case FaultSite::Kind::QueueAddress:
    return S.Queue.entry(Site.QueueIndex).Address;
  case FaultSite::Kind::QueueValue:
    return S.Queue.entry(Site.QueueIndex).Val;
  }
  talft_unreachable("unknown fault site kind");
}

void talft::injectFault(MachineState &S, const FaultSite &Site,
                        int64_t NewValue) {
  assert(!S.isFault() && "injecting into the fault state");
  switch (Site.K) {
  case FaultSite::Kind::Register: {
    Value V = S.Regs.get(Site.R);
    V.N = NewValue; // The color tag is preserved (it is fictional).
    S.Regs.set(Site.R, V);
    return;
  }
  case FaultSite::Kind::QueueAddress: {
    QueueEntry E = S.Queue.entry(Site.QueueIndex);
    E.Address = NewValue;
    S.Queue.setEntry(Site.QueueIndex, E);
    return;
  }
  case FaultSite::Kind::QueueValue: {
    QueueEntry E = S.Queue.entry(Site.QueueIndex);
    E.Val = NewValue;
    S.Queue.setEntry(Site.QueueIndex, E);
    return;
  }
  }
  talft_unreachable("unknown fault site kind");
}

std::vector<int64_t> talft::representativeCorruptions(const Program &Prog) {
  std::vector<int64_t> Values = {0, 1, -1, 2, 0x7FFF'0001, -0x7FFF'0001};
  auto AddNear = [&Values](int64_t A) {
    Values.push_back(A - 1);
    Values.push_back(A);
    Values.push_back(A + 1);
  };
  for (const Block &B : Prog.blocks())
    AddNear(Prog.addressOf(B.Label));
  for (const DataCell &Cell : Prog.data())
    AddNear(Cell.Address);
  std::sort(Values.begin(), Values.end());
  Values.erase(std::unique(Values.begin(), Values.end()), Values.end());
  return Values;
}
