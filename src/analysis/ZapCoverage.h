//===- analysis/ZapCoverage.h - Static classification of fault sites ------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies every (execution point, fault site) pair of the reg-zap /
/// Q-zap model statically:
///
///   Dead       — the zapped register is not live at the point: no path
///                reads it before overwriting it, so the faulty run
///                replays the reference trace and ends in a state similar
///                modulo the zap color. Statically Masked (Figure 9).
///   Checked    — live, and every path to an observable action from here
///                passes the duplication-consistency checks: the first
///                observable consequence of the corruption is a hardware
///                cross-check (stB compare, jmpB/bzB compare, fetch
///                compare).
///   Vulnerable — live, and some path reaches an instruction with a
///                duplication-consistency finding, so a corruption may
///                escape the cross-checks.
///
/// The campaign's Prune mode consults deadRegisterSite(): Dead sites are
/// provably Masked, so their injections can be tallied without simulation.
/// Pruning additionally requires every control-flow target to have been
/// resolved exactly (pruneSound()) — an over-approximated CFG is fine for
/// reporting but not for skipping work.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ANALYSIS_ZAPCOVERAGE_H
#define TALFT_ANALYSIS_ZAPCOVERAGE_H

#include "analysis/CFG.h"
#include "analysis/Duplication.h"
#include "analysis/Liveness.h"

namespace talft {
namespace analysis {

enum class ZapClass : uint8_t { Dead, Checked, Vulnerable };

const char *zapClassName(ZapClass C);

/// Per-site totals over every (instruction, mentioned register) pair.
struct ZapSummary {
  uint64_t Dead = 0;
  uint64_t Checked = 0;
  uint64_t Vulnerable = 0;

  uint64_t total() const { return Dead + Checked + Vulnerable; }
};

class ZapCoverage {
public:
  /// Builds the CFG, solves liveness, runs the duplication pass.
  static Expected<ZapCoverage> compute(const Program &Prog);

  const CFG &cfg() const { return G; }
  const DuplicationResult &duplication() const { return Dup; }

  /// Classifies a reg-zap of \p R at the execution point whose current
  /// instruction address is \p A (i.e. pcG's payload there).
  ZapClass classifyRegister(Addr A, Reg R) const;

  /// Classifies a Q-zap at the point \p A: pending stores are checked by
  /// their stB unless a vulnerable instruction is reachable.
  ZapClass classifyQueue(Addr A) const;

  /// True when the CFG resolved every transfer target exactly, making the
  /// liveness facts trustworthy for skipping injections.
  bool pruneSound() const { return G.targetsResolved(); }

  /// True when an injection at (\p A, register \p R) is provably Masked:
  /// a dead general-register site under a fully resolved CFG.
  bool deadRegisterSite(Addr A, Reg R) const {
    return pruneSound() && R.isGeneral() && G.contains(A) &&
           classifyRegister(A, R) == ZapClass::Dead;
  }

  /// True when the special registers (d and the pcs) appear only in their
  /// control-protocol roles — never as an operand of an ALU op, mov, load,
  /// store, or as a branch test/target register. Every read/write of them
  /// is then part of the d-protocol or the fetch compare, which is what
  /// lets a campaign discharge d/pc zap sites from the reference trace
  /// alone (see Campaign's control-register discharge).
  bool specialSiteDischargeSound() const {
    return pruneSound() && SpecialsControlOnly;
  }

  /// Registers the program mentions plus d and the pcs — the same site
  /// filter the campaign's OnlyMentionedRegisters uses.
  const std::vector<Reg> &mentionedRegs() const { return Mentioned; }

  /// Totals over every (instruction, mentioned register) pair.
  ZapSummary summarize() const;

  /// Renders the machine-readable coverage report as a JSON object.
  std::string reportJson(unsigned Indent = 0) const;

private:
  CFG G;
  Liveness Live;
  DuplicationResult Dup;
  /// Per block: some duplication finding is reachable from here.
  std::vector<uint8_t> FindingReachable;
  std::vector<Reg> Mentioned;
  bool SpecialsControlOnly = true;
};

} // namespace analysis
} // namespace talft

#endif // TALFT_ANALYSIS_ZAPCOVERAGE_H
