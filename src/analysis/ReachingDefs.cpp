//===- analysis/ReachingDefs.cpp ------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "analysis/ReachingDefs.h"

#include "analysis/Liveness.h"

using namespace talft;
using namespace talft::analysis;

void ReachingDefsAnalysis::transfer(Addr A, const Inst &I, State &S) {
  for (Reg D : instDefs(I)) {
    S[D.denseIndex()].clear();
    S[D.denseIndex()].insert(A);
  }
  // bz conditionally writes d on the taken arm: gen without kill.
  if (I.Op == Opcode::Bz)
    S[Reg::dest().denseIndex()].insert(A);
}
