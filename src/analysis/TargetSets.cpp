//===- analysis/TargetSets.cpp --------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "analysis/TargetSets.h"

#include "analysis/Dataflow.h"
#include "sexpr/ExprNormalize.h"
#include "types/HeapTyping.h"
#include "types/StaticContext.h"
#include "types/TypeContext.h"

#include <algorithm>
#include <array>
#include <map>

using namespace talft;
using namespace talft::analysis;

namespace {

/// A saturating finite set of constants: the may-values of one register.
/// Empty + !Any is the join identity ("no fault-free path delivers a
/// value yet"); Any is the saturated top.
struct ConstSet {
  static constexpr size_t Cap = 16;

  bool Any = false;
  /// Sorted, unique; meaningful only when !Any.
  std::vector<int64_t> Vals;

  static ConstSet any() {
    ConstSet S;
    S.Any = true;
    return S;
  }
  static ConstSet single(int64_t V) {
    ConstSet S;
    S.Vals.push_back(V);
    return S;
  }

  bool contains(int64_t V) const {
    return Any || std::binary_search(Vals.begin(), Vals.end(), V);
  }

  /// Union with saturation; returns true when this set changed.
  bool unionWith(const ConstSet &O) {
    if (Any)
      return false;
    if (O.Any) {
      Any = true;
      Vals.clear();
      return true;
    }
    size_t Before = Vals.size();
    std::vector<int64_t> Merged;
    Merged.reserve(Vals.size() + O.Vals.size());
    std::set_union(Vals.begin(), Vals.end(), O.Vals.begin(), O.Vals.end(),
                   std::back_inserter(Merged));
    if (Merged.size() > Cap) {
      Any = true;
      Vals.clear();
      return true;
    }
    Vals = std::move(Merged);
    return Vals.size() != Before;
  }

  bool operator==(const ConstSet &O) const = default;
};

ConstSet foldAlu(Opcode Op, const ConstSet &L, const ConstSet &R) {
  if (L.Any || R.Any)
    return ConstSet::any();
  ConstSet Out;
  for (int64_t A : L.Vals)
    for (int64_t B : R.Vals) {
      int64_t V = evalAluOp(Op, A, B);
      if (!std::binary_search(Out.Vals.begin(), Out.Vals.end(), V))
        Out.Vals.insert(
            std::lower_bound(Out.Vals.begin(), Out.Vals.end(), V), V);
      if (Out.Vals.size() > ConstSet::Cap)
        return ConstSet::any();
    }
  return Out;
}

/// Forward may-constant analysis over general registers and d. Loads read
/// from \p CleanCells (address -> initializer for cells no store can
/// reach); a null map treats every load as unknown (the dirtiness
/// pre-pass). The pc registers stay Any from the boundary on: no transfer
/// writes their entries.
struct LabelFlow {
  using State = std::array<ConstSet, Reg::NumRegs>;
  static constexpr Direction Dir = Direction::Forward;

  const std::map<Addr, int64_t> *CleanCells = nullptr;

  State boundary(const CFG &) {
    State S;
    S.fill(ConstSet::any());
    return S;
  }
  State top() { return State(); }

  bool join(State &Into, const State &From, uint32_t) {
    bool Changed = false;
    for (size_t I = 0; I != Into.size(); ++I)
      Changed |= Into[I].unionWith(From[I]);
    return Changed;
  }

  ConstSet loadFrom(const ConstSet &AddrSet) const {
    if (AddrSet.Any || !CleanCells)
      return ConstSet::any();
    ConstSet Out;
    for (int64_t A : AddrSet.Vals) {
      auto It = CleanCells->find((Addr)A);
      if (It == CleanCells->end())
        return ConstSet::any();
      Out.unionWith(ConstSet::single(It->second));
    }
    return Out;
  }

  void transfer(Addr, const Inst &I, State &S) {
    size_t D = Reg::dest().denseIndex();
    switch (I.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul: {
      ConstSet R = I.HasImm ? ConstSet::single(I.Imm.N)
                            : S[I.Rt.denseIndex()];
      S[I.Rd.denseIndex()] = foldAlu(I.Op, S[I.Rs.denseIndex()], R);
      break;
    }
    case Opcode::Mov:
      S[I.Rd.denseIndex()] = ConstSet::single(I.Imm.N);
      break;
    case Opcode::Ld:
      S[I.Rd.denseIndex()] = loadFrom(S[I.Rs.denseIndex()]);
      break;
    case Opcode::St:
      // Verified against the queue before touching memory; cell dirtiness
      // is handled by the pre-pass, not here.
      break;
    case Opcode::Jmp:
      // jmpG faults unless d = 0, then parks val(Rd) in d; jmpB resets d
      // to green 0 on commit (and never falls through — the reset flows
      // to the committed targets).
      S[D] = I.C == Color::Green ? S[I.Rd.denseIndex()] : ConstSet::single(0);
      break;
    case Opcode::Bz:
      if (I.C == Color::Green) {
        // Taken intent parks val(Rd); untaken keeps the entry value 0
        // (any other prior d faults, so that path has no successors).
        ConstSet T = S[I.Rd.denseIndex()];
        T.unionWith(ConstSet::single(0));
        S[D] = T;
      } else {
        S[D] = ConstSet::single(0);
      }
      break;
    }
  }
};

/// The meet of the two replicas at a commit: the committed target equals
/// both val(d) and val(Rd), so any finite side bounds it.
ConstSet meetReplicas(const ConstSet &DSet, const ConstSet &RdSet) {
  if (DSet.Any)
    return RdSet;
  if (RdSet.Any)
    return DSet;
  ConstSet Out;
  std::set_intersection(DSet.Vals.begin(), DSet.Vals.end(),
                        RdSet.Vals.begin(), RdSet.Vals.end(),
                        std::back_inserter(Out.Vals));
  return Out;
}

/// Cells whose initializer survives the whole run: no store's abstract
/// address set can reach them. Sound over faulty continuations too — stB
/// verifies (address, value) against the green queue entry before writing,
/// so a single fault cannot land a store at an unintended address.
std::map<Addr, int64_t> findCleanCells(const CFG &G,
                                       const DataflowSolution<LabelFlow> &Pre) {
  std::map<Addr, int64_t> Clean;
  const std::vector<DataCell> &Cells = G.program().data();
  if (Cells.empty())
    return Clean;

  std::vector<int64_t> Dirty;
  for (Addr A = G.minAddr(); A != G.limitAddr(); ++A) {
    const Inst &I = G.inst(A);
    if (I.Op != Opcode::St)
      continue;
    const ConstSet &AddrSet = Pre.at(G, A)[I.Rd.denseIndex()];
    if (AddrSet.Any)
      return Clean; // Some store can hit anything: every cell is dirty.
    Dirty.insert(Dirty.end(), AddrSet.Vals.begin(), AddrSet.Vals.end());
  }
  std::sort(Dirty.begin(), Dirty.end());
  for (const DataCell &C : Cells)
    if (!std::binary_search(Dirty.begin(), Dirty.end(), (int64_t)C.Address))
      Clean.emplace(C.Address, C.Init);
  return Clean;
}

/// Ψ ⊢ n : b, mirroring check/StateTyping's intHasBasicType: any integer
/// has type int; a ref/code shape must be exactly Ψ's (uniqued) type.
bool valueHasShape(const HeapTyping &Psi, int64_t N, const BasicType *B) {
  if (!B || B->isInt())
    return true;
  return Psi.lookup((Addr)N) == B;
}

/// True when no fault-free register file described by \p S can enter the
/// block preconditioned by \p Pre off a commit. Refutation-only:
/// unconstrained registers (Γ is partial) and conditional or open types
/// never refute.
bool refutesTarget(const CFG &G, const StaticContext *Pre,
                   const LabelFlow::State &S) {
  if (!Pre)
    return false;
  const Program &Prog = G.program();
  ExprContext &Exprs = Prog.types().exprs();
  const HeapTyping &Psi = Prog.heapTyping();

  for (const auto &[Key, T] : Pre->Gamma) {
    if (T.isConditional())
      continue;
    Reg R = RegFileType::regForKey(Key);
    if (R.isDest()) {
      // A commit lands with d = (Green, 0).
      if (T.C != Color::Green)
        return true;
      if (!valueHasShape(Psi, 0, T.B))
        return true;
      if (T.E) {
        const Expr *N = normalize(Exprs, T.E);
        if (N->isIntConst() && N->intValue() != 0)
          return true;
      }
      continue;
    }
    const ConstSet &V = S[R.denseIndex()];
    if (V.Any)
      continue;
    if (T.E) {
      const Expr *N = normalize(Exprs, T.E);
      if (N->isIntConst() && !V.contains(N->intValue()))
        return true;
    }
    if (T.B && !T.B->isInt()) {
      bool AnyFits = false;
      for (int64_t Val : V.Vals)
        AnyFits |= valueHasShape(Psi, Val, T.B);
      if (!AnyFits)
        return true;
    }
  }
  return false;
}

/// The precondition of the block whose entry is \p Target, or null when
/// the address is not a block entry (mid-block landings carry no declared
/// contract and are never refuted).
const StaticContext *targetPrecondition(const CFG &G, Addr Target) {
  const Block *B = G.talBlockOf(Target);
  if (!B || G.program().addressOf(B->Label) != Target)
    return nullptr;
  return B->Pre;
}

} // namespace

std::vector<JumpResolution>
talft::analysis::refineIndirectTargets(const CFG &G) {
  std::vector<JumpResolution> Out;

  // Layer 2: the label-set dataflow, with a dirtiness pre-pass so loads
  // from never-stored data cells yield their initializers.
  LabelFlow Flow;
  DataflowSolution<LabelFlow> Sol = solveDataflow(G, Flow);
  bool AnyLoad = false;
  for (Addr A = G.minAddr(); A != G.limitAddr(); ++A)
    AnyLoad |= G.inst(A).Op == Opcode::Ld;
  std::map<Addr, int64_t> Clean;
  if (AnyLoad) {
    Clean = findCleanCells(G, Sol);
    if (!Clean.empty()) {
      Flow.CleanCells = &Clean;
      Sol = solveDataflow(G, Flow);
    }
  }

  const CodeMemory &Code = G.program().code();
  for (Addr A = G.minAddr(); A != G.limitAddr(); ++A) {
    if (!G.isCommit(A))
      continue;
    // Layer-0 exact sets are already minimal; layer-2 exact sets must be
    // re-derived each round — the sharpened graph can shrink the flow
    // into this jump further (e.g. severed over-approximated edges).
    bool ExactDataflow = G.targetProvenance(A) == TargetProvenance::Exact &&
                         G.resolutionLayer(A) == 2;
    if (G.targetProvenance(A) == TargetProvenance::Exact && !ExactDataflow)
      continue;
    const LabelFlow::State &S = Sol.In[G.instIndex(A)];
    const Inst &I = G.inst(A);
    ConstSet M = meetReplicas(S[Reg::dest().denseIndex()],
                              S[I.Rd.denseIndex()]);

    JumpResolution R;
    R.At = A;
    if (ExactDataflow && M.Any) {
      // The previous round's finite set stands (join order can transiently
      // widen mid-fixpoint); keep it rather than regress.
      continue;
    }
    if (!M.Any) {
      // Finite flow: every committable target is here. Addresses outside
      // code wedge at the next fetch, so they carry no edge.
      R.Prov = TargetProvenance::Exact;
      R.Layer = 2;
      for (int64_t T : M.Vals)
        if (Code.contains((Addr)T))
          R.Targets.push_back((Addr)T);
    } else {
      // Layer 1: keep the candidates the register context cannot refute.
      const std::vector<Addr> &Cands = G.controlTargets(A);
      for (Addr T : Cands)
        if (!refutesTarget(G, targetPrecondition(G, T), S))
          R.Targets.push_back(T);
      bool Narrowed = R.Targets.size() < Cands.size() ||
                      G.targetProvenance(A) == TargetProvenance::TypeNarrowed;
      R.Prov = Narrowed ? TargetProvenance::TypeNarrowed
                        : TargetProvenance::OverApproximated;
      R.Layer = Narrowed ? 1 : 0;
    }
    Out.push_back(std::move(R));
  }
  return Out;
}
