//===- analysis/Certify.h - Unified program certification status ----------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One certification verdict for a program, unifying what used to be
/// ad-hoc booleans scattered across the checker, the raw-semantics sweep
/// and the benchmark reports:
///
///   Typed             — the Hoare type system accepts the program
///                       (Theorem 4 applies by construction);
///   AnalysisCertified — the checker rejects it (typically dynamic
///                       addressing), but the duplication-consistency
///                       analysis proves every observable action is
///                       guarded by an independent-replica cross-check;
///   Inconsistent      — the analysis pinpointed at least one instruction
///                       whose operands are not independent replicas.
///
/// certifyProgram is the `--analyze` fallback behind check/ProgramChecker:
/// try the types first, fall back to the dataflow analysis, and report
/// which rung of the ladder the program landed on.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ANALYSIS_CERTIFY_H
#define TALFT_ANALYSIS_CERTIFY_H

#include "analysis/Duplication.h"
#include "types/TypeContext.h"

namespace talft {
namespace analysis {

enum class CertificationStatus : uint8_t {
  Typed,
  AnalysisCertified,
  Inconsistent,
};

/// Human-readable name ("typed", "analysis-certified", "inconsistent").
const char *certificationStatusName(CertificationStatus S);
/// Stable snake_case key for JSON reports.
const char *certificationStatusJsonKey(CertificationStatus S);

struct Certification {
  CertificationStatus Status = CertificationStatus::Inconsistent;
  /// The type checker's first complaint (empty when Typed).
  std::string CheckerError;
  /// The duplication findings (nonempty iff Inconsistent).
  std::vector<Finding> Findings;
  /// False when some commit's target set is not Exact; an
  /// AnalysisCertified verdict then assumes transfers reach block entries.
  bool TargetsResolved = true;
  /// Per-commit provenance tallies from the resolution ladder.
  CFG::ResolutionSummary Resolution;

  bool certified() const { return Status != CertificationStatus::Inconsistent; }
};

/// Certifies \p Prog: type check first, duplication analysis as fallback.
/// The program must be laid out.
Certification certifyProgram(TypeContext &TC, const Program &Prog);

} // namespace analysis
} // namespace talft

#endif // TALFT_ANALYSIS_CERTIFY_H
