//===- analysis/Liveness.h - Colored register liveness --------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward may-liveness over the CFG, tracking *which color of
/// computation* will consume each register: a register is live-for-green at
/// a point when some path reaches a green-colored use (ldG address, stG
/// operand, bzG test, ...) before any redefinition, and likewise for blue.
/// ALU instructions are colorless in the machine, so their operand uses
/// count for both colors.
///
/// The instruction fetch compares pcG against pcB on every step, so both
/// program counters are used by every instruction — they are never dead.
/// The use/def sets mirror sim/Step.cpp exactly; conditional definitions
/// (bz writing d only when taken) generate but do not kill.
///
/// The zap-coverage pass and the campaign pruner build directly on the
/// contrapositive of Figure 9's similarity: a corrupted register that is
/// dead at the injection point is never read again before redefinition, so
/// the faulty run replays the reference run bit-for-bit and ends in a
/// similar state — the fault is statically Masked.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ANALYSIS_LIVENESS_H
#define TALFT_ANALYSIS_LIVENESS_H

#include "analysis/Dataflow.h"

#include <array>

namespace talft {
namespace analysis {

/// Liveness bits per register.
enum : uint8_t {
  LiveForGreen = 1,
  LiveForBlue = 2,
  LiveForBoth = LiveForGreen | LiveForBlue,
};

/// One (register, color-mask) use or def of an instruction.
struct RegFact {
  Reg R;
  uint8_t Colors = LiveForBoth;
};

/// The registers the instruction at \p A reads, with the color of the
/// consuming computation. Includes the implicit fetch reads of pcG/pcB and
/// the d reads of jmp/bz. Mirrors sim/Step.cpp.
std::vector<RegFact> instUses(const Inst &I);

/// The registers the instruction unconditionally overwrites (a bz only
/// conditionally writes d, so it defines nothing here). Excludes the pc
/// increment, which instUses already keeps permanently live.
std::vector<Reg> instDefs(const Inst &I);

/// The backward colored-liveness analysis.
class LivenessAnalysis {
public:
  using State = std::array<uint8_t, Reg::NumRegs>;
  static constexpr Direction Dir = Direction::Backward;

  State top() { return State{}; }
  State boundary(const CFG &) { return State{}; }

  bool join(State &Into, const State &From, uint32_t) {
    bool Changed = false;
    for (size_t I = 0; I != Into.size(); ++I) {
      uint8_t Merged = Into[I] | From[I];
      Changed |= Merged != Into[I];
      Into[I] = Merged;
    }
    return Changed;
  }

  void transfer(Addr, const Inst &I, State &S) {
    for (Reg D : instDefs(I))
      S[D.denseIndex()] = 0;
    for (const RegFact &U : instUses(I))
      S[U.R.denseIndex()] |= U.Colors;
  }
};

/// Solved liveness: liveIn(A, r) is nonzero when register r may be read
/// (by a computation of the returned colors) before being overwritten on
/// some path from A.
struct Liveness {
  DataflowSolution<LivenessAnalysis> Sol;

  static Liveness compute(const CFG &G) {
    LivenessAnalysis A;
    return {solveDataflow(G, A)};
  }

  uint8_t liveIn(const CFG &G, Addr A, Reg R) const {
    return Sol.at(G, A)[R.denseIndex()];
  }
};

} // namespace analysis
} // namespace talft

#endif // TALFT_ANALYSIS_LIVENESS_H
