//===- analysis/Duplication.h - Green/blue duplication consistency --------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TALFT reliability argument rests on a structural invariant the type
/// system enforces syntactically: every observable action (a committed
/// store, a control transfer) is checked by hardware against two
/// *independently derived replicas* — one green, one blue — so that a
/// single-color fault can corrupt at most one side of each comparison.
/// The Hoare types can only express this for statically-known addresses;
/// this pass checks the same invariant semantically, so it also certifies
/// the Figure 10 kernels with dynamic addressing that the checker rejects.
///
/// The abstract domain gives every register a symbolic value expression
/// (entry values, immediates, ALU ops, loads, and phi nodes at joins), a
/// *taint mask* recording the colors of every register the value flowed
/// through, and an abstract color tag. Two operands are independent
/// replicas when their expressions compute the same function of the entry
/// state (coinductively through phis), the green side is tainted only
/// green, and the blue side only blue. The abstract store queue pairs each
/// stB with its pending stG, and the abstract d register tracks the
/// jmpG/jmpB and bzG/bzB protocol. Every violated check becomes a Finding
/// with the instruction's address and source location.
///
/// Assumption (documented, not checked): paired loads of replica addresses
/// return replica values. This holds when every store is itself
/// duplication-consistent — which the pass verifies at each stB — and
/// matches the protected-memory fault model (memory cells are never
/// corrupted).
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ANALYSIS_DUPLICATION_H
#define TALFT_ANALYSIS_DUPLICATION_H

#include "analysis/CFG.h"

#include <string>
#include <vector>

namespace talft {
namespace analysis {

/// One reliability violation located at an instruction.
struct Finding {
  Addr A = 0;
  SourceLoc Loc;
  /// "label+offset: mnemonic", e.g. "store+3: stB r2, r1".
  std::string Where;
  std::string Message;

  /// Renders "store+3: stB r2, r1: <message>".
  std::string str() const { return Where + ": " + Message; }
};

/// The outcome of the duplication-consistency pass.
struct DuplicationResult {
  std::vector<Finding> Findings;
  /// False when some commit's target set is not Exact; the verdict then
  /// assumes transfers only reach block entries.
  bool TargetsResolved = true;
  /// Per-commit provenance tallies from the resolution ladder.
  CFG::ResolutionSummary Resolution;

  bool consistent() const { return Findings.empty(); }
};

/// Runs the duplication-consistency abstract interpretation over \p G.
/// Fails only when the program's initial state cannot be built.
Expected<DuplicationResult> analyzeDuplication(const CFG &G);

} // namespace analysis
} // namespace talft

#endif // TALFT_ANALYSIS_DUPLICATION_H
