//===- analysis/Dataflow.h - Worklist dataflow over the CFG ---------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic round-based worklist solver over analysis::CFG. An analysis
/// supplies a join-semilattice state and a per-instruction transfer
/// function:
///
///   struct MyAnalysis {
///     using State = ...;                     // copyable, ==-comparable
///     static constexpr Direction Dir = Direction::Forward;
///     State boundary(const CFG &G);          // entry (fwd) / exit (bwd)
///     State top();                           // join identity / unreached
///     bool join(State &Into, const State &From, uint32_t AtBlock);
///     void transfer(Addr A, const Inst &I, State &S);
///   };
///
/// join returns true when Into changed (the solver re-queues dependents).
/// The block the join lands on is passed so analyses that name join points
/// (the duplication domain's phi nodes) can do so deterministically.
///
/// The solver iterates blocks in reverse post-order (post-order for
/// backward analyses) until no boundary state changes, then materializes
/// the per-instruction states: solution.at(A) is the state *entering*
/// instruction A — facts-in for a forward analysis, live-in for a backward
/// one. Unreachable blocks keep top().
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ANALYSIS_DATAFLOW_H
#define TALFT_ANALYSIS_DATAFLOW_H

#include "analysis/CFG.h"

#include <algorithm>
#include <deque>
#include <vector>

namespace talft {
namespace analysis {

enum class Direction : uint8_t { Forward, Backward };

template <typename A> struct DataflowSolution {
  /// State entering each instruction, indexed by CFG::instIndex().
  std::vector<typename A::State> In;
  /// State at each block's flow-exit (fwd: after the last instruction;
  /// bwd: before the first), indexed by block id.
  std::vector<typename A::State> BlockOut;

  const typename A::State &at(const CFG &G, Addr Adr) const {
    return In[G.instIndex(Adr)];
  }
};

template <typename A>
DataflowSolution<A> solveDataflow(const CFG &G, A &Analysis) {
  constexpr bool Fwd = A::Dir == Direction::Forward;
  size_t N = G.numBlocks();

  // BoundaryIn[b]: state at the block's flow-entry (fwd: before the first
  // instruction; bwd: after the last).
  std::vector<typename A::State> BoundaryIn(N, Analysis.top());

  auto Order = G.rpo();
  if (!Fwd)
    std::reverse(Order.begin(), Order.end());

  std::deque<uint32_t> Work(Order.begin(), Order.end());
  std::vector<uint8_t> InWork(N, 0);
  for (uint32_t B : Order)
    InWork[B] = 1;

  auto FlowNeighbors = [&](uint32_t B) -> const std::vector<uint32_t> & {
    return Fwd ? G.block(B).Succs : G.block(B).Preds;
  };

  // Seed: the entry block (fwd) / every exit-capable block (bwd). For
  // backward analyses every block without successors gets the boundary
  // state; blocks on cycles with no path out are solved from top.
  {
    typename A::State Seed = Analysis.boundary(G);
    if (Fwd) {
      Analysis.join(BoundaryIn[G.entryBlock()], Seed, G.entryBlock());
    } else {
      for (uint32_t B = 0; B != N; ++B)
        if (G.block(B).Succs.empty())
          Analysis.join(BoundaryIn[B], Seed, B);
    }
  }

  auto TransferBlock = [&](uint32_t B, typename A::State S) {
    const CFG::BasicBlock &BB = G.block(B);
    if (Fwd) {
      for (Addr Adr = BB.Begin; Adr != BB.end(); ++Adr)
        Analysis.transfer(Adr, G.inst(Adr), S);
    } else {
      for (Addr Adr = BB.end() - 1; Adr >= BB.Begin; --Adr)
        Analysis.transfer(Adr, G.inst(Adr), S);
    }
    return S;
  };

  while (!Work.empty()) {
    uint32_t B = Work.front();
    Work.pop_front();
    InWork[B] = 0;
    typename A::State Out = TransferBlock(B, BoundaryIn[B]);
    for (uint32_t Nb : FlowNeighbors(B)) {
      if (Analysis.join(BoundaryIn[Nb], Out, Nb) && !InWork[Nb]) {
        InWork[Nb] = 1;
        Work.push_back(Nb);
      }
    }
  }

  // Materialize per-instruction entry states and block flow-exit states.
  DataflowSolution<A> Sol;
  Sol.In.assign(G.numInsts(), Analysis.top());
  Sol.BlockOut.assign(N, Analysis.top());
  for (uint32_t B = 0; B != N; ++B) {
    if (!G.reachable(B))
      continue;
    const CFG::BasicBlock &BB = G.block(B);
    typename A::State S = BoundaryIn[B];
    if (Fwd) {
      for (Addr Adr = BB.Begin; Adr != BB.end(); ++Adr) {
        Sol.In[G.instIndex(Adr)] = S;
        Analysis.transfer(Adr, G.inst(Adr), S);
      }
    } else {
      for (Addr Adr = BB.end() - 1; Adr >= BB.Begin; --Adr) {
        Analysis.transfer(Adr, G.inst(Adr), S);
        Sol.In[G.instIndex(Adr)] = S;
      }
    }
    Sol.BlockOut[B] = std::move(S);
  }
  return Sol;
}

} // namespace analysis
} // namespace talft

#endif // TALFT_ANALYSIS_DATAFLOW_H
