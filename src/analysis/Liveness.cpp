//===- analysis/Liveness.cpp ----------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

using namespace talft;
using namespace talft::analysis;

std::vector<RegFact> talft::analysis::instUses(const Inst &I) {
  std::vector<RegFact> Uses;
  // Fetch compares the two program counters on every transition.
  Uses.push_back({Reg::pcG(), LiveForGreen});
  Uses.push_back({Reg::pcB(), LiveForBlue});

  uint8_t C = I.C == Color::Green ? LiveForGreen : LiveForBlue;
  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
    // The machine's ALU is colorless; the consuming computation's color is
    // only known dynamically, so operand uses count for both.
    Uses.push_back({I.Rs, LiveForBoth});
    if (!I.HasImm)
      Uses.push_back({I.Rt, LiveForBoth});
    break;
  case Opcode::Mov:
    break;
  case Opcode::Ld:
    Uses.push_back({I.Rs, C});
    break;
  case Opcode::St:
    Uses.push_back({I.Rd, C});
    Uses.push_back({I.Rs, C});
    break;
  case Opcode::Bz:
    // rz and d are read on both arms; the target register only when taken
    // — counting it unconditionally is the conservative direction for a
    // may-liveness used to prove deadness.
    Uses.push_back({I.rz(), C});
    Uses.push_back({I.Rd, C});
    Uses.push_back({Reg::dest(), LiveForGreen});
    break;
  case Opcode::Jmp:
    Uses.push_back({I.Rd, C});
    Uses.push_back({Reg::dest(), LiveForGreen});
    break;
  }
  return Uses;
}

std::vector<Reg> talft::analysis::instDefs(const Inst &I) {
  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Mov:
  case Opcode::Ld:
    return {I.Rd};
  case Opcode::St:
    return {};
  case Opcode::Bz:
    // Writes d only on the taken arm: a conditional def must not kill.
    return {};
  case Opcode::Jmp:
    // Faults instead of writing when the d protocol is violated, but a
    // faulted run has no continuation to observe stale values in.
    return {Reg::dest()};
  }
  return {};
}
