//===- analysis/ReachingDefs.h - Reaching definitions ---------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward reaching definitions over the CFG: which instruction addresses
/// may have produced the current value of each register. Address 0 (the
/// sentinel below any code address) stands for the program's initial
/// register state. Conditional definitions (bz writing d when taken)
/// generate without killing.
///
/// Used by tests as a second, independently-checkable instantiation of the
/// dataflow framework, and by talft-lint to name the defining instructions
/// in duplication diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ANALYSIS_REACHINGDEFS_H
#define TALFT_ANALYSIS_REACHINGDEFS_H

#include "analysis/Dataflow.h"

#include <array>
#include <set>

namespace talft {
namespace analysis {

/// The pseudo-definition address for "still the initial value".
inline constexpr Addr EntryDef = 0;

class ReachingDefsAnalysis {
public:
  using State = std::array<std::set<Addr>, Reg::NumRegs>;
  static constexpr Direction Dir = Direction::Forward;

  State top() { return State{}; }

  State boundary(const CFG &) {
    State S;
    for (auto &Defs : S)
      Defs.insert(EntryDef);
    return S;
  }

  bool join(State &Into, const State &From, uint32_t) {
    bool Changed = false;
    for (size_t I = 0; I != Into.size(); ++I)
      for (Addr D : From[I])
        Changed |= Into[I].insert(D).second;
    return Changed;
  }

  void transfer(Addr A, const Inst &I, State &S);
};

/// Solved reaching definitions: defsIn(A, r) is the set of instruction
/// addresses (or EntryDef) that may have last written r when control
/// reaches A.
struct ReachingDefs {
  DataflowSolution<ReachingDefsAnalysis> Sol;

  static ReachingDefs compute(const CFG &G) {
    ReachingDefsAnalysis A;
    return {solveDataflow(G, A)};
  }

  const std::set<Addr> &defsIn(const CFG &G, Addr A, Reg R) const {
    return Sol.at(G, A)[R.denseIndex()];
  }
};

} // namespace analysis
} // namespace talft

#endif // TALFT_ANALYSIS_REACHINGDEFS_H
