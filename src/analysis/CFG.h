//===- analysis/CFG.h - Control-flow graph over a laid-out program --------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic-block control-flow graph over the dense code addresses a laid-out
/// tal::Program occupies. Control flow in TALFT is split across color pairs:
/// jmpG only *records* a transfer intention in d (execution falls through),
/// and the matching jmpB *commits* it; likewise bzG/bzB for conditional
/// branches. Block boundaries therefore sit after the blue half of each
/// pair, not after the green half.
///
/// Successor resolution runs a little constant propagation over each TAL
/// block (movs of immediates, folded ALU ops, and the abstract d register)
/// so that the common codegen shape — mov a target label into a register,
/// jmpG/jmpB it — resolves to exact targets. A target that cannot be
/// resolved (e.g. loaded from memory) is over-approximated by every TAL
/// block entry and recorded in targetsResolved(), which downstream passes
/// consult before trusting the graph for *pruning* (as opposed to
/// certification, where extra edges are sound).
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ANALYSIS_CFG_H
#define TALFT_ANALYSIS_CFG_H

#include "support/Error.h"
#include "tal/Program.h"

#include <cstdint>
#include <vector>

namespace talft {
namespace analysis {

/// A basic-block CFG over the program's code addresses. Instruction
/// addresses are dense (layout assigns [1, 1+size)), so per-instruction
/// facts index a plain vector via instIndex().
class CFG {
public:
  struct BasicBlock {
    /// Address of the first instruction.
    Addr Begin = 0;
    /// Number of consecutive instructions.
    uint32_t Size = 0;
    /// Successor / predecessor block ids.
    std::vector<uint32_t> Succs;
    std::vector<uint32_t> Preds;
    /// True when some successor set was over-approximated (an indirect
    /// jump whose target the constant scan could not resolve).
    bool HasIndirect = false;

    Addr end() const { return Begin + (Addr)Size; }
  };

  /// Builds the CFG. Requires Prog.isLaidOut(); fails only on malformed
  /// layouts (empty code, entry outside code).
  static Expected<CFG> build(const Program &Prog);

  const Program &program() const { return *Prog; }

  size_t numBlocks() const { return Blocks.size(); }
  const BasicBlock &block(uint32_t Id) const { return Blocks[Id]; }
  uint32_t entryBlock() const { return EntryBB; }

  /// First code address and one past the last.
  Addr minAddr() const { return Base; }
  Addr limitAddr() const { return Base + (Addr)Insts.size(); }
  bool contains(Addr A) const { return A >= minAddr() && A < limitAddr(); }
  size_t numInsts() const { return Insts.size(); }

  /// Dense instruction index of a code address.
  size_t instIndex(Addr A) const {
    assert(contains(A) && "address outside code");
    return (size_t)(A - Base);
  }
  const Inst &inst(Addr A) const { return Insts[instIndex(A)]; }
  /// The block containing a code address.
  uint32_t blockOf(Addr A) const { return BlockOf[instIndex(A)]; }

  /// Source location of the instruction at \p A (may be invalid).
  SourceLoc locOf(Addr A) const { return Locs[instIndex(A)]; }
  /// The TAL block containing \p A (for labels in diagnostics).
  const Block *talBlockOf(Addr A) const { return TalBlocks[instIndex(A)]; }
  /// Renders "label+offset" for an address, e.g. "loop+2".
  std::string describeAddr(Addr A) const;

  /// Resolved control targets of the instruction at \p A (jmpB and the
  /// taken edge of bzB); empty for straight-line instructions.
  const std::vector<Addr> &controlTargets(Addr A) const {
    return Targets[instIndex(A)];
  }

  /// False when any jump target had to be over-approximated; pruning
  /// clients must treat the graph as advisory then.
  bool targetsResolved() const { return Resolved; }

  /// True when the block is reachable from the entry block.
  bool reachable(uint32_t Id) const { return Reachable[Id]; }

  /// Block ids in reverse post-order from the entry (reachable blocks
  /// only).
  const std::vector<uint32_t> &rpo() const { return Rpo; }

private:
  const Program *Prog = nullptr;
  Addr Base = 1;
  std::vector<Inst> Insts;
  std::vector<SourceLoc> Locs;
  std::vector<const Block *> TalBlocks;
  std::vector<std::vector<Addr>> Targets;
  std::vector<uint32_t> BlockOf;
  std::vector<BasicBlock> Blocks;
  std::vector<uint8_t> Reachable;
  std::vector<uint32_t> Rpo;
  uint32_t EntryBB = 0;
  bool Resolved = true;
};

} // namespace analysis
} // namespace talft

#endif // TALFT_ANALYSIS_CFG_H
