//===- analysis/CFG.h - Control-flow graph over a laid-out program --------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic-block control-flow graph over the dense code addresses a laid-out
/// tal::Program occupies. Control flow in TALFT is split across color pairs:
/// jmpG only *records* a transfer intention in d (execution falls through),
/// and the matching jmpB *commits* it; likewise bzG/bzB for conditional
/// branches. Block boundaries therefore sit after the blue half of each
/// pair, not after the green half.
///
/// Successor resolution ladders three layers (FLTA -> MLTA style):
///
///   layer 0  per-block constant scan: movs of immediates, folded ALU ops,
///            and the abstract d register resolve the common codegen shape
///            (mov a label into a register, jmpG/jmpB it) to exact targets;
///   layer 1  type narrowing: a still-unresolved jump keeps only targets
///            whose code type (the block's precondition StaticContext) the
///            jump's abstract register-file context cannot refute;
///   layer 2  interprocedural label-set dataflow (analysis/TargetSets):
///            which label constants can flow into the jump register through
///            movs, ALU folds, and never-stored typed data cells; a finite
///            flow set resolves the jump exactly.
///
/// Every committing (blue) control instruction carries a per-jump
/// TargetProvenance:
///
///   Exact             the target set holds every address any fault-free
///                     run can commit to (layers 0/2) — sound for pruning;
///   TypeNarrowed      a type-based subset of the block entries (layer 1);
///                     sound only if transfers satisfy preconditions, an
///                     assumption campaigns validate dynamically with
///                     --cfi-check, so pruning must not trust it;
///   OverApproximated  every TAL block entry.
///
/// targetsResolved() — every commit Exact — is what pruning clients check;
/// certification tolerates the extra edges of the weaker provenances.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ANALYSIS_CFG_H
#define TALFT_ANALYSIS_CFG_H

#include "support/Error.h"
#include "tal/Program.h"

#include <cstdint>
#include <vector>

namespace talft {
namespace analysis {

/// How a committing control instruction's target set was established, from
/// strongest to weakest.
enum class TargetProvenance : uint8_t {
  /// Constant scan or label-set dataflow proved the set covers every
  /// fault-free committed transfer. Sound for pruning.
  Exact,
  /// Unresolved flow, narrowed to the block entries whose code type the
  /// jump's abstract register context cannot refute. Carries the
  /// "transfers satisfy preconditions" assumption; advisory for pruning.
  TypeNarrowed,
  /// Every TAL block entry.
  OverApproximated,
};

/// Stable lower-case name for reports ("exact" / "type-narrowed" /
/// "over-approximated").
const char *provenanceName(TargetProvenance P);

/// A basic-block CFG over the program's code addresses. Instruction
/// addresses are dense (layout assigns [1, 1+size)), so per-instruction
/// facts index a plain vector via instIndex().
class CFG {
public:
  struct BasicBlock {
    /// Address of the first instruction.
    Addr Begin = 0;
    /// Number of consecutive instructions.
    uint32_t Size = 0;
    /// Successor / predecessor block ids.
    std::vector<uint32_t> Succs;
    std::vector<uint32_t> Preds;
    /// True when the terminating commit's target set is not Exact.
    bool HasIndirect = false;

    Addr end() const { return Begin + (Addr)Size; }
  };

  /// Aggregate resolution facts over the committing (blue) control
  /// instructions, for reports.
  struct ResolutionSummary {
    uint64_t Commits = 0;
    uint64_t Exact = 0;
    uint64_t TypeNarrowed = 0;
    uint64_t OverApproximated = 0;
    /// Total size of the non-Exact target sets (the residual
    /// over-approximation the ladder could not discharge).
    uint64_t UnresolvedTargets = 0;
  };

  /// Builds the CFG, running the full resolution ladder to a fixpoint.
  /// Requires Prog.isLaidOut(); fails only on malformed layouts (empty
  /// code, entry outside code).
  static Expected<CFG> build(const Program &Prog);

  const Program &program() const { return *Prog; }

  size_t numBlocks() const { return Blocks.size(); }
  const BasicBlock &block(uint32_t Id) const { return Blocks[Id]; }
  uint32_t entryBlock() const { return EntryBB; }

  /// First code address and one past the last.
  Addr minAddr() const { return Base; }
  Addr limitAddr() const { return Base + (Addr)Insts.size(); }
  bool contains(Addr A) const { return A >= minAddr() && A < limitAddr(); }
  size_t numInsts() const { return Insts.size(); }

  /// Dense instruction index of a code address.
  size_t instIndex(Addr A) const {
    assert(contains(A) && "address outside code");
    return (size_t)(A - Base);
  }
  const Inst &inst(Addr A) const { return Insts[instIndex(A)]; }
  /// The block containing a code address.
  uint32_t blockOf(Addr A) const { return BlockOf[instIndex(A)]; }

  /// Source location of the instruction at \p A (may be invalid).
  SourceLoc locOf(Addr A) const { return Locs[instIndex(A)]; }
  /// The TAL block containing \p A (for labels in diagnostics).
  const Block *talBlockOf(Addr A) const { return TalBlocks[instIndex(A)]; }
  /// Renders "label+offset" for an address, e.g. "loop+2".
  std::string describeAddr(Addr A) const;

  /// Resolved control targets of the instruction at \p A (jmpB and the
  /// taken edge of bzB); empty for straight-line instructions.
  const std::vector<Addr> &controlTargets(Addr A) const {
    return Targets[instIndex(A)];
  }

  /// Provenance of the target set at \p A. Exact (trivially) for
  /// non-control instructions and green halves.
  TargetProvenance targetProvenance(Addr A) const {
    return Provs[instIndex(A)];
  }

  /// The strongest ladder layer that produced the target set at \p A
  /// (0 = constant scan, 1 = type narrowing, 2 = label-set dataflow).
  unsigned resolutionLayer(Addr A) const { return Layers[instIndex(A)]; }

  /// True for the committing (blue) control instruction at \p A.
  bool isCommit(Addr A) const {
    const Inst &I = inst(A);
    return I.isControlFlow() && I.C == Color::Blue;
  }

  /// Per-commit resolution tallies.
  ResolutionSummary resolutionSummary() const;

  /// True when every commit's target set is Exact; pruning clients must
  /// treat the graph as advisory otherwise.
  bool targetsResolved() const { return Resolved; }

  /// True when the block is reachable from the entry block.
  bool reachable(uint32_t Id) const { return Reachable[Id]; }

  /// Block ids in reverse post-order from the entry (reachable blocks
  /// only).
  const std::vector<uint32_t> &rpo() const { return Rpo; }

private:
  /// Rebuilds Blocks/BlockOf/edges/reachability/RPO from Insts + Targets.
  void assembleGraph();

  const Program *Prog = nullptr;
  Addr Base = 1;
  std::vector<Inst> Insts;
  std::vector<SourceLoc> Locs;
  std::vector<const Block *> TalBlocks;
  std::vector<std::vector<Addr>> Targets;
  std::vector<TargetProvenance> Provs;
  std::vector<uint8_t> Layers;
  std::vector<uint32_t> BlockOf;
  std::vector<BasicBlock> Blocks;
  std::vector<uint8_t> Reachable;
  std::vector<uint32_t> Rpo;
  uint32_t EntryBB = 0;
  bool Resolved = true;
};

} // namespace analysis
} // namespace talft

#endif // TALFT_ANALYSIS_CFG_H
