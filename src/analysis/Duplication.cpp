//===- analysis/Duplication.cpp -------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Duplication.h"

#include "analysis/Dataflow.h"
#include "support/StringUtils.h"

#include <array>
#include <map>
#include <optional>
#include <set>

using namespace talft;
using namespace talft::analysis;

namespace {

/// Taint bits: the colors of every register a value has flowed through.
enum : uint8_t { TaintGreen = 1, TaintBlue = 2 };

inline uint8_t taintOf(Color C) {
  return C == Color::Green ? TaintGreen : TaintBlue;
}

/// Abstract color tag of a value (the machine's fictional color).
enum class Tag : uint8_t { Green, Blue, Top };

inline Tag tagOf(Color C) { return C == Color::Green ? Tag::Green : Tag::Blue; }

inline Tag joinTag(Tag A, Tag B) { return A == B ? A : Tag::Top; }

/// Hash-consed symbolic value expressions. Id 0 is Unknown.
struct Expr {
  enum Kind : uint8_t { Unknown, Imm, Entry, Phi, Op, Load } K = Unknown;
  Opcode Aop = Opcode::Add; // Op only
  int64_t N = 0;            // Imm payload
  unsigned RegIdx = 0;      // Entry / Phi (dense index; see phi pseudo-regs)
  uint32_t BB = 0;          // Phi join block
  uint32_t L = 0;           // Op lhs / Load address
  uint32_t R = 0;           // Op rhs

  auto key() const { return std::tie(K, Aop, N, RegIdx, BB, L, R); }
  bool operator<(const Expr &O) const { return key() < O.key(); }
};

/// Pseudo register index for phi nodes over the pending branch-test value
/// (the real d gets its own dense index).
constexpr unsigned CondPseudoReg = Reg::NumRegs;

constexpr uint32_t UnknownExpr = 0;

/// An abstract value: expression + taint mask + color tag.
struct AbsVal {
  uint32_t E = UnknownExpr;
  uint8_t Taint = TaintGreen | TaintBlue;
  Tag T = Tag::Top;

  bool operator==(const AbsVal &O) const = default;
};

/// Abstract transfer-protocol state of the d register.
enum class DKind : uint8_t { Zero, Pending, CondPending, Top };

/// Queue growth bound before the abstract queue collapses to unknown
/// (keeps loop states finite; compiled code never queues this deep).
constexpr size_t MaxAbstractQueue = 64;

struct DupState {
  bool Bottom = true;
  std::array<AbsVal, NumGeneralRegs> R;
  /// Index 0 = queue front (most recent stG); back = next stB's pair.
  std::vector<std::pair<AbsVal, AbsVal>> Q;
  bool QTop = false;
  DKind D = DKind::Zero;
  AbsVal DTarget;
  AbsVal DCond;

  bool operator==(const DupState &O) const = default;
};

using FindingSink = std::vector<Finding>;

class DupDomain {
public:
  using State = DupState;
  static constexpr Direction Dir = Direction::Forward;

  explicit DupDomain(const CFG &G) : G(G) {}

  Error init() {
    Expected<MachineState> S0 = G.program().initialState();
    if (Error E = S0.takeError())
      return E;
    for (unsigned I = 0; I != Reg::NumRegs; ++I)
      InitVals[I] = S0->Regs.get(Reg::fromDenseIndex(I));
    Exprs.push_back(Expr{}); // id 0 = Unknown
    return Error::success();
  }

  State top() { return State{}; }

  State boundary(const CFG &) {
    State S;
    S.Bottom = false;
    for (unsigned I = 0; I != NumGeneralRegs; ++I) {
      Expr E;
      E.K = Expr::Entry;
      E.RegIdx = I;
      S.R[I] = {intern(E), taintOf(InitVals[I].C), tagOf(InitVals[I].C)};
    }
    S.D = InitVals[Reg::dest().denseIndex()].N == 0 ? DKind::Zero : DKind::Top;
    return S;
  }

  bool join(State &Into, const State &From, uint32_t AtBlock) {
    if (From.Bottom)
      return false;
    if (Into.Bottom) {
      Into = From;
      return true;
    }
    bool Changed = false;
    for (unsigned I = 0; I != NumGeneralRegs; ++I)
      Changed |= joinVal(Into.R[I], From.R[I], AtBlock, I);

    if (!Into.QTop && (From.QTop || From.Q.size() != Into.Q.size())) {
      Into.QTop = true;
      Into.Q.clear();
      Changed = true;
    } else if (!Into.QTop) {
      for (size_t I = 0; I != Into.Q.size(); ++I) {
        Changed |= joinQueueVal(Into.Q[I].first, From.Q[I].first);
        Changed |= joinQueueVal(Into.Q[I].second, From.Q[I].second);
      }
    }

    if (Into.D != From.D) {
      if (Into.D != DKind::Top) {
        Into.D = DKind::Top;
        Into.DTarget = AbsVal{};
        Into.DCond = AbsVal{};
        Changed = true;
      }
    } else if (Into.D == DKind::Pending) {
      Changed |= joinVal(Into.DTarget, From.DTarget, AtBlock,
                         Reg::dest().denseIndex());
    } else if (Into.D == DKind::CondPending) {
      Changed |= joinVal(Into.DTarget, From.DTarget, AtBlock,
                         Reg::dest().denseIndex());
      Changed |= joinVal(Into.DCond, From.DCond, AtBlock, CondPseudoReg);
    }
    return Changed;
  }

  void transfer(Addr A, const Inst &I, State &S) { step(A, I, S, nullptr); }

  /// Re-runs one instruction with findings enabled (post-fixpoint pass).
  void step(Addr A, const Inst &I, State &S, FindingSink *Sink);

  /// Makes the solved block-exit states available to replica() for phi
  /// incoming lookups.
  void setSolution(const DataflowSolution<DupDomain> *S) { Sol = S; }

  /// Coinductive replica check: do the two expressions compute the same
  /// function of the (protected) entry state and memory?
  bool replica(uint32_t A, uint32_t B);

private:
  uint32_t intern(const Expr &E) {
    auto [It, New] = Interned.emplace(E, (uint32_t)Exprs.size());
    if (New)
      Exprs.push_back(E);
    return It->second;
  }
  uint32_t immExpr(int64_t N) {
    Expr E;
    E.K = Expr::Imm;
    E.N = N;
    return intern(E);
  }
  uint32_t opExpr(Opcode Op, uint32_t L, uint32_t R) {
    if (L == UnknownExpr || R == UnknownExpr)
      return UnknownExpr;
    Expr E;
    E.K = Expr::Op;
    E.Aop = Op;
    E.L = L;
    E.R = R;
    return intern(E);
  }
  uint32_t loadExpr(uint32_t AddrE) {
    if (AddrE == UnknownExpr)
      return UnknownExpr;
    Expr E;
    E.K = Expr::Load;
    E.L = AddrE;
    return intern(E);
  }
  uint32_t phiExpr(uint32_t BB, unsigned RegIdx) {
    Expr E;
    E.K = Expr::Phi;
    E.BB = BB;
    E.RegIdx = RegIdx;
    return intern(E);
  }

  bool joinVal(AbsVal &Into, const AbsVal &From, uint32_t AtBlock,
               unsigned RegIdx) {
    AbsVal Merged;
    Merged.E = Into.E == From.E ? Into.E : phiExpr(AtBlock, RegIdx);
    Merged.Taint = Into.Taint | From.Taint;
    Merged.T = joinTag(Into.T, From.T);
    bool Changed = !(Merged == Into);
    Into = Merged;
    return Changed;
  }

  /// Queue entries have no phi home; differing expressions collapse to
  /// Unknown (compiled code drains the queue before every join).
  bool joinQueueVal(AbsVal &Into, const AbsVal &From) {
    AbsVal Merged;
    Merged.E = Into.E == From.E ? Into.E : UnknownExpr;
    Merged.Taint = Into.Taint | From.Taint;
    Merged.T = joinTag(Into.T, From.T);
    bool Changed = !(Merged == Into);
    Into = Merged;
    return Changed;
  }

  /// The solved expression register \p RegIdx holds at \p Pred's exit
  /// (phi pseudo-registers resolve to the abstract d components).
  uint32_t incomingExpr(uint32_t Pred, unsigned RegIdx) const {
    const DupState &Out = Sol->BlockOut[Pred];
    if (Out.Bottom)
      return UnknownExpr;
    if (RegIdx < NumGeneralRegs)
      return Out.R[RegIdx].E;
    if (RegIdx == Reg::dest().denseIndex())
      return Out.D == DKind::Pending || Out.D == DKind::CondPending
                 ? Out.DTarget.E
                 : UnknownExpr;
    if (RegIdx == CondPseudoReg)
      return Out.D == DKind::CondPending ? Out.DCond.E : UnknownExpr;
    return UnknownExpr;
  }

  void emit(FindingSink *Sink, Addr A, const Inst &I, std::string Msg) {
    if (!Sink)
      return;
    Finding F;
    F.A = A;
    F.Loc = G.locOf(A);
    F.Where = G.describeAddr(A) + ": " + I.str();
    F.Message = std::move(Msg);
    Sink->push_back(std::move(F));
  }

  /// The three-way independence check behind every hardware comparison:
  /// the green side must be a green-only derivation, the blue side a
  /// blue-only derivation, and both must compute the same function.
  void checkPair(FindingSink *Sink, Addr A, const Inst &I, const AbsVal &Green,
                 const AbsVal &Blue, const char *What) {
    // Pure check, no state effects: during fixpoint solving (no sink) the
    // solution pointer replica() reads is not set yet, so skip entirely.
    if (!Sink)
      return;
    if (Green.Taint & TaintBlue)
      emit(Sink, A, I,
           formatv("green %s flowed through a blue-tainted computation",
                   What));
    if (Blue.Taint & TaintGreen)
      emit(Sink, A, I,
           formatv("blue %s is not an independent replica: it flowed "
                   "through a green-tainted computation",
                   What));
    if (!replica(Green.E, Blue.E))
      emit(Sink, A, I,
           formatv("blue %s does not replicate the pending green %s", What,
                   What));
  }

  const CFG &G;
  std::array<Value, Reg::NumRegs> InitVals{};
  std::vector<Expr> Exprs;
  std::map<Expr, uint32_t> Interned;
  const DataflowSolution<DupDomain> *Sol = nullptr;
  std::map<std::pair<uint32_t, uint32_t>, bool> ReplicaMemo;
  std::set<std::pair<uint32_t, uint32_t>> ReplicaInProgress;
};

void DupDomain::step(Addr A, const Inst &I, State &S, FindingSink *Sink) {
  if (S.Bottom)
    return;
  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul: {
    AbsVal L = S.R[I.Rs.generalIndex()];
    AbsVal R = I.HasImm ? AbsVal{immExpr(I.Imm.N), 0, tagOf(I.Imm.C)}
                        : S.R[I.Rt.generalIndex()];
    // The result takes the second operand's color (sim/Step.cpp), so the
    // result value now resides in a register of that color.
    Tag ResTag = R.T;
    uint8_t ResTaint = L.Taint | R.Taint;
    ResTaint |= ResTag == Tag::Top ? (TaintGreen | TaintBlue)
                                   : (ResTag == Tag::Green ? TaintGreen
                                                           : TaintBlue);
    S.R[I.Rd.generalIndex()] = {opExpr(I.Op, L.E, R.E), ResTaint, ResTag};
    break;
  }
  case Opcode::Mov:
    S.R[I.Rd.generalIndex()] = {immExpr(I.Imm.N), taintOf(I.Imm.C),
                                tagOf(I.Imm.C)};
    break;
  case Opcode::Ld: {
    AbsVal AddrV = S.R[I.Rs.generalIndex()];
    if (AddrV.T != Tag::Top && AddrV.T != tagOf(I.C))
      emit(Sink, A, I,
           formatv("%s address is a %s value (cross-color load)",
                   I.C == Color::Green ? "ldG" : "ldB",
                   AddrV.T == Tag::Green ? "green" : "blue"));
    S.R[I.Rd.generalIndex()] = {loadExpr(AddrV.E),
                                (uint8_t)(AddrV.Taint | taintOf(I.C)),
                                tagOf(I.C)};
    break;
  }
  case Opcode::St: {
    AbsVal AddrV = S.R[I.Rd.generalIndex()];
    AbsVal ValV = S.R[I.Rs.generalIndex()];
    if (I.C == Color::Green) {
      if (AddrV.T == Tag::Blue)
        emit(Sink, A, I, "stG address is a blue value");
      if (ValV.T == Tag::Blue)
        emit(Sink, A, I, "stG stores a blue value");
      if (!S.QTop) {
        // Queue residence makes the pair part of the green structure.
        AddrV.Taint |= TaintGreen;
        ValV.Taint |= TaintGreen;
        S.Q.insert(S.Q.begin(), {AddrV, ValV});
        if (S.Q.size() > MaxAbstractQueue) {
          S.QTop = true;
          S.Q.clear();
        }
      }
    } else {
      if (ValV.T == Tag::Green)
        emit(Sink, A, I, "stB stores a green value");
      if (AddrV.T == Tag::Green)
        emit(Sink, A, I,
             "stB requires an independently computed blue address, but the "
             "address is a green value");
      if (S.QTop) {
        emit(Sink, A, I,
             "store queue shape unknown here; cannot pair this stB with "
             "its stG");
      } else if (S.Q.empty()) {
        emit(Sink, A, I,
             "stB with no pending stG: the machine faults on an empty "
             "queue");
      } else {
        const auto &[QAddr, QVal] = S.Q.back();
        checkPair(Sink, A, I, QAddr, AddrV, "store address");
        checkPair(Sink, A, I, QVal, ValV, "store value");
        S.Q.pop_back();
      }
    }
    break;
  }
  case Opcode::Jmp: {
    AbsVal TargetV = S.R[I.Rd.generalIndex()];
    if (I.C == Color::Green) {
      if (S.D != DKind::Zero)
        emit(Sink, A, I,
             "jmpG while a transfer may already be pending (d != 0 faults)");
      if (TargetV.T == Tag::Blue)
        emit(Sink, A, I, "jmpG target is a blue value");
      S.D = DKind::Pending;
      TargetV.Taint |= TaintGreen; // now resides in d, a green location
      S.DTarget = TargetV;
      S.DCond = AbsVal{};
    } else {
      switch (S.D) {
      case DKind::Zero:
        emit(Sink, A, I,
             "jmpB with no pending jmpG: the machine faults on d = 0");
        break;
      case DKind::CondPending:
        emit(Sink, A, I,
             "jmpB pairs with a conditional bzG, not an unconditional jmpG");
        break;
      case DKind::Top:
        emit(Sink, A, I, "transfer-protocol state unknown at this jmpB");
        break;
      case DKind::Pending:
        if (TargetV.T == Tag::Green)
          emit(Sink, A, I, "jmpB target is a green value");
        checkPair(Sink, A, I, S.DTarget, TargetV, "jump target");
        break;
      }
      S.D = DKind::Zero;
      S.DTarget = AbsVal{};
      S.DCond = AbsVal{};
    }
    break;
  }
  case Opcode::Bz: {
    AbsVal TestV = S.R[I.rz().generalIndex()];
    AbsVal TargetV = S.R[I.Rd.generalIndex()];
    if (I.C == Color::Green) {
      if (S.D != DKind::Zero)
        emit(Sink, A, I,
             "bzG while a transfer may already be pending (d != 0 faults)");
      if (TestV.T == Tag::Blue)
        emit(Sink, A, I, "bzG tests a blue value");
      if (TargetV.T == Tag::Blue)
        emit(Sink, A, I, "bzG target is a blue value");
      S.D = DKind::CondPending;
      TargetV.Taint |= TaintGreen;
      S.DTarget = TargetV;
      S.DCond = TestV;
    } else {
      switch (S.D) {
      case DKind::Zero:
        emit(Sink, A, I,
             "bzB with no pending bzG: a taken branch would fault on d = 0");
        break;
      case DKind::Pending:
        emit(Sink, A, I,
             "bzB pairs with an unconditional jmpG, not a bzG");
        break;
      case DKind::Top:
        emit(Sink, A, I, "transfer-protocol state unknown at this bzB");
        break;
      case DKind::CondPending:
        if (TestV.T == Tag::Green)
          emit(Sink, A, I, "bzB tests a green value");
        if (TargetV.T == Tag::Green)
          emit(Sink, A, I, "bzB target is a green value");
        checkPair(Sink, A, I, S.DCond, TestV, "branch test");
        checkPair(Sink, A, I, S.DTarget, TargetV, "branch target");
        break;
      }
      S.D = DKind::Zero;
      S.DTarget = AbsVal{};
      S.DCond = AbsVal{};
    }
    break;
  }
  }
}

bool DupDomain::replica(uint32_t A, uint32_t B) {
  if (A == UnknownExpr || B == UnknownExpr)
    return false;
  if (A == B && Exprs[A].K != Expr::Phi)
    return true;
  auto Key = std::make_pair(A, B);
  if (auto It = ReplicaMemo.find(Key); It != ReplicaMemo.end())
    return It->second;
  // A result derived while a coinductive phi assumption is outstanding may
  // depend on that assumption; only assumption-free results are cached.
  auto Remember = [&](bool R) {
    if (ReplicaInProgress.empty())
      ReplicaMemo[Key] = R;
    return R;
  };
  const Expr &EA = Exprs[A];
  const Expr &EB = Exprs[B];
  if (EA.K != EB.K)
    return Remember(false);
  switch (EA.K) {
  case Expr::Imm:
    return Remember(EA.N == EB.N);
  case Expr::Entry:
    return Remember(InitVals[EA.RegIdx].N == InitVals[EB.RegIdx].N);
  case Expr::Op:
    return Remember(EA.Aop == EB.Aop && replica(EA.L, EB.L) &&
                    replica(EA.R, EB.R));
  case Expr::Load:
    return Remember(replica(EA.L, EB.L));
  case Expr::Phi: {
    if (EA.BB != EB.BB)
      return Remember(false);
    // Coinductive: a cycle that never leaves agreeing incomings agrees.
    if (!ReplicaInProgress.insert(Key).second)
      return true;
    bool Ok = true;
    for (uint32_t Pred : G.block(EA.BB).Preds) {
      if (!G.reachable(Pred))
        continue;
      if (!replica(incomingExpr(Pred, EA.RegIdx),
                   incomingExpr(Pred, EB.RegIdx))) {
        Ok = false;
        break;
      }
    }
    ReplicaInProgress.erase(Key);
    return Remember(Ok);
  }
  case Expr::Unknown:
    break;
  }
  return Remember(false);
}

} // namespace

Expected<DuplicationResult> talft::analysis::analyzeDuplication(const CFG &G) {
  DupDomain Dom(G);
  if (Error E = Dom.init())
    return E;
  DataflowSolution<DupDomain> Sol = solveDataflow(G, Dom);
  Dom.setSolution(&Sol);

  DuplicationResult R;
  R.TargetsResolved = G.targetsResolved();
  R.Resolution = G.resolutionSummary();
  // Findings pass: replay each reachable block once from its solved entry
  // state, in address order, so diagnostics are deterministic.
  for (uint32_t Id = 0; Id != G.numBlocks(); ++Id) {
    if (!G.reachable(Id))
      continue;
    const CFG::BasicBlock &BB = G.block(Id);
    DupState S = Sol.In[G.instIndex(BB.Begin)];
    for (Addr A = BB.Begin; A != BB.end(); ++A)
      Dom.step(A, G.inst(A), S, &R.Findings);
  }
  return R;
}
