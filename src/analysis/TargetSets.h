//===- analysis/TargetSets.h - FLTA->MLTA indirect-target ladder ----------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Layers 1 and 2 of the indirect-target resolution ladder (layer 0, the
/// per-block constant scan, lives in CFG.cpp):
///
///   layer 2 — label-set dataflow. A forward interprocedural analysis over
///   the current CFG tracks, per register, the finite set of constants that
///   can reach it (movs, pairwise-folded ALU ops, and loads from data
///   cells no store can touch), saturating to "any" past a small cap. At a
///   commit the target must equal both d (green replica) and Rd (blue
///   replica), so the meet of their flow sets bounds every committed
///   target; a finite meet resolves the jump *exactly*.
///
///   layer 1 — type refutation. When the flow sets saturate, the candidate
///   set (all TAL block entries) is narrowed by refuting target blocks
///   whose precondition StaticContext no fault-free register file at the
///   jump can satisfy: a declared d type other than (G, int, 0) (commits
///   reset d to green 0), a declared singleton expression excluded by the
///   register's flow set, or a ref/code shape no flow-set value has under
///   the heap typing Psi. Refutation-only — entailment would wrongly
///   exclude blocks whose Gamma merely omits a register.
///
/// Soundness under the single-fault model: committed transfers are
/// cross-checked (jmpB/bzB fault unless d and Rd agree, and bz decisions
/// are themselves cross-checked), so even in a faulty continuation every
/// *committed* target is a value the fault-free dataflow accounts for; and
/// stores are verified against the queue before touching memory, so a
/// never-stored cell's load value is its initializer in faulty runs too.
/// Layer-2 Exact sets therefore hold for campaign pruning. Layer-1
/// narrowing additionally assumes transfers satisfy preconditions — true
/// for typed programs, validated dynamically (--cfi-check) for untyped
/// ones — so it stays advisory.
///
/// CFG::build calls refineIndirectTargets() in a fixpoint: sharpened sets
/// shrink the edge relation, which can sharpen the flow sets again.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ANALYSIS_TARGETSETS_H
#define TALFT_ANALYSIS_TARGETSETS_H

#include "analysis/CFG.h"

#include <vector>

namespace talft {
namespace analysis {

/// One sharpened commit: the instruction, the provenance/layer the ladder
/// reached, and the new target set (sorted, unique, code addresses only).
struct JumpResolution {
  Addr At = 0;
  TargetProvenance Prov = TargetProvenance::OverApproximated;
  uint8_t Layer = 0;
  std::vector<Addr> Targets;
};

/// Runs layers 2 and 1 over \p G and returns a resolution for every commit
/// whose current provenance is not Exact. Returned target sets are always
/// subsets of the current ones (monotone), so applying them and rebuilding
/// the graph converges.
std::vector<JumpResolution> refineIndirectTargets(const CFG &G);

} // namespace analysis
} // namespace talft

#endif // TALFT_ANALYSIS_TARGETSETS_H
