//===- analysis/Certify.cpp -----------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Certify.h"

#include "analysis/CFG.h"
#include "check/ProgramChecker.h"
#include "support/Diagnostics.h"

using namespace talft;
using namespace talft::analysis;

const char *talft::analysis::certificationStatusName(CertificationStatus S) {
  switch (S) {
  case CertificationStatus::Typed:
    return "typed";
  case CertificationStatus::AnalysisCertified:
    return "analysis-certified";
  case CertificationStatus::Inconsistent:
    return "inconsistent";
  }
  return "unknown";
}

const char *
talft::analysis::certificationStatusJsonKey(CertificationStatus S) {
  switch (S) {
  case CertificationStatus::Typed:
    return "typed";
  case CertificationStatus::AnalysisCertified:
    return "analysis_certified";
  case CertificationStatus::Inconsistent:
    return "inconsistent";
  }
  return "unknown";
}

Certification talft::analysis::certifyProgram(TypeContext &TC,
                                              const Program &Prog) {
  Certification C;
  DiagnosticEngine Diags;
  if (Expected<CheckedProgram> CP = checkProgram(TC, Prog, Diags)) {
    C.Status = CertificationStatus::Typed;
    // Typed programs skip the duplication ladder, but their indirect
    // jumps still go through target resolution — report it so consumers
    // see one summary shape across all rungs.
    if (Expected<CFG> G = CFG::build(Prog)) {
      C.TargetsResolved = G->targetsResolved();
      C.Resolution = G->resolutionSummary();
    }
    return C;
  } else {
    C.CheckerError = CP.message();
    if (Diags.hasErrors())
      for (const Diagnostic &D : Diags.diagnostics())
        if (D.Kind == DiagKind::Error) {
          C.CheckerError = D.str();
          break;
        }
  }

  Expected<CFG> G = CFG::build(Prog);
  if (!G) {
    Finding F;
    F.Where = "<program>";
    F.Message = "cannot build CFG: " + G.message();
    C.Findings.push_back(std::move(F));
    return C;
  }
  Expected<DuplicationResult> Dup = analyzeDuplication(*G);
  if (!Dup) {
    Finding F;
    F.Where = "<program>";
    F.Message = "duplication analysis failed: " + Dup.message();
    C.Findings.push_back(std::move(F));
    return C;
  }
  C.TargetsResolved = Dup->TargetsResolved;
  C.Resolution = Dup->Resolution;
  if (Dup->consistent()) {
    C.Status = CertificationStatus::AnalysisCertified;
  } else {
    C.Status = CertificationStatus::Inconsistent;
    C.Findings = Dup->Findings;
  }
  return C;
}
