//===- analysis/ZapCoverage.cpp -------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "analysis/ZapCoverage.h"

#include "support/StringUtils.h"

#include <deque>
#include <set>

using namespace talft;
using namespace talft::analysis;

const char *talft::analysis::zapClassName(ZapClass C) {
  switch (C) {
  case ZapClass::Dead:
    return "dead";
  case ZapClass::Checked:
    return "checked";
  case ZapClass::Vulnerable:
    return "vulnerable";
  }
  return "unknown";
}

Expected<ZapCoverage> ZapCoverage::compute(const Program &Prog) {
  Expected<CFG> G = CFG::build(Prog);
  if (Error E = G.takeError())
    return E;
  ZapCoverage Z;
  Z.G = std::move(*G);
  Z.Live = Liveness::compute(Z.G);
  Expected<DuplicationResult> Dup = analyzeDuplication(Z.G);
  if (Error E = Dup.takeError())
    return E;
  Z.Dup = std::move(*Dup);

  // Backward closure: blocks from which some finding is reachable. A site
  // in such a block can feed a corrupted value into the unchecked
  // instruction, so liveness alone cannot promise a cross-check.
  Z.FindingReachable.assign(Z.G.numBlocks(), 0);
  std::deque<uint32_t> Work;
  for (const Finding &F : Z.Dup.Findings) {
    uint32_t B = Z.G.blockOf(F.A);
    if (!Z.FindingReachable[B]) {
      Z.FindingReachable[B] = 1;
      Work.push_back(B);
    }
  }
  while (!Work.empty()) {
    uint32_t B = Work.front();
    Work.pop_front();
    for (uint32_t P : Z.G.block(B).Preds)
      if (!Z.FindingReachable[P]) {
        Z.FindingReachable[P] = 1;
        Work.push_back(P);
      }
  }

  // Same register filter as the campaign's OnlyMentionedRegisters, plus
  // the special-register scan: d and the pcs must never appear as an
  // explicit operand for the control-register discharge to be sound.
  std::set<unsigned> Used;
  for (const Block &B : Prog.blocks())
    for (const ProgInst &PI : B.Insts) {
      const Inst &I = PI.I;
      Used.insert(I.Rd.denseIndex());
      Used.insert(I.Rs.denseIndex());
      if (!I.HasImm)
        Used.insert(I.Rt.denseIndex());
      switch (I.Op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
        Z.SpecialsControlOnly &= I.Rd.isGeneral() && I.Rs.isGeneral() &&
                                 (I.HasImm || I.Rt.isGeneral());
        break;
      case Opcode::Mov:
        Z.SpecialsControlOnly &= I.Rd.isGeneral();
        break;
      case Opcode::Ld:
      case Opcode::St:
        Z.SpecialsControlOnly &= I.Rd.isGeneral() && I.Rs.isGeneral();
        break;
      case Opcode::Bz:
        Z.SpecialsControlOnly &= I.rz().isGeneral() && I.Rd.isGeneral();
        break;
      case Opcode::Jmp:
        Z.SpecialsControlOnly &= I.Rd.isGeneral();
        break;
      }
    }
  Used.insert(Reg::dest().denseIndex());
  Used.insert(Reg::pcG().denseIndex());
  Used.insert(Reg::pcB().denseIndex());
  for (unsigned I : Used)
    Z.Mentioned.push_back(Reg::fromDenseIndex(I));
  return Z;
}

ZapClass ZapCoverage::classifyRegister(Addr A, Reg R) const {
  if (Live.liveIn(G, A, R) == 0)
    return ZapClass::Dead;
  return FindingReachable[G.blockOf(A)] ? ZapClass::Vulnerable
                                        : ZapClass::Checked;
}

ZapClass ZapCoverage::classifyQueue(Addr A) const {
  // A corrupted pending store is compared against the blue operands at its
  // stB; only a reachable inconsistency can let it slip through.
  return FindingReachable[G.blockOf(A)] ? ZapClass::Vulnerable
                                        : ZapClass::Checked;
}

ZapSummary ZapCoverage::summarize() const {
  ZapSummary S;
  for (Addr A = G.minAddr(); A < G.limitAddr(); ++A) {
    if (!G.reachable(G.blockOf(A)))
      continue;
    for (Reg R : Mentioned) {
      switch (classifyRegister(A, R)) {
      case ZapClass::Dead:
        ++S.Dead;
        break;
      case ZapClass::Checked:
        ++S.Checked;
        break;
      case ZapClass::Vulnerable:
        ++S.Vulnerable;
        break;
      }
    }
  }
  return S;
}

std::string ZapCoverage::reportJson(unsigned Indent) const {
  std::string P(Indent, ' ');
  ZapSummary S = summarize();
  std::string Out;
  Out += P + "{\n";
  Out += P + formatv("  \"targets_resolved\": %s,\n",
                     Dup.TargetsResolved ? "true" : "false");
  Out += P + formatv("  \"consistent\": %s,\n",
                     Dup.consistent() ? "true" : "false");
  const CFG::ResolutionSummary &R = Dup.Resolution;
  Out += P + formatv("  \"target_resolution\": {\"commits\": %llu, "
                     "\"exact\": %llu, \"type_narrowed\": %llu, "
                     "\"over_approximated\": %llu, "
                     "\"unresolved_targets\": %llu, \"jumps\": [",
                     (unsigned long long)R.Commits,
                     (unsigned long long)R.Exact,
                     (unsigned long long)R.TypeNarrowed,
                     (unsigned long long)R.OverApproximated,
                     (unsigned long long)R.UnresolvedTargets);
  {
    bool First = true;
    for (Addr A = G.minAddr(); A < G.limitAddr(); ++A) {
      if (!G.isCommit(A) ||
          G.targetProvenance(A) == TargetProvenance::Exact)
        continue;
      if (!First)
        Out += ", ";
      First = false;
      Out += formatv("{\"at\": %lld, \"where\": \"%s\", "
                     "\"provenance\": \"%s\", \"layer\": %u, "
                     "\"targets\": %zu}",
                     (long long)A, G.describeAddr(A).c_str(),
                     provenanceName(G.targetProvenance(A)),
                     G.resolutionLayer(A), G.controlTargets(A).size());
    }
  }
  Out += "]},\n";
  Out += P + formatv("  \"blocks\": %zu,\n", G.numBlocks());
  Out += P + formatv("  \"instructions\": %zu,\n", G.numInsts());
  Out += P + formatv("  \"sites\": {\"dead\": %llu, \"checked\": %llu, "
                     "\"vulnerable\": %llu},\n",
                     (unsigned long long)S.Dead, (unsigned long long)S.Checked,
                     (unsigned long long)S.Vulnerable);
  Out += P + "  \"findings\": [";
  for (size_t I = 0; I != Dup.Findings.size(); ++I) {
    if (I)
      Out += ", ";
    std::string Esc;
    for (char C : Dup.Findings[I].str()) {
      if (C == '"' || C == '\\')
        Esc += '\\';
      Esc += C;
    }
    Out += "\"" + Esc + "\"";
  }
  Out += "]\n";
  Out += P + "}";
  return Out;
}
