//===- analysis/CFG.cpp ---------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <array>
#include <optional>
#include <set>

using namespace talft;
using namespace talft::analysis;

namespace {

/// The abstract destination register during the constant scan: known zero,
/// a known candidate target (the value jmpG/bzG parked there), or unknown.
struct AbstractDest {
  enum Kind : uint8_t { Zero, Candidate, Unknown } K = Zero;
  Addr Target = 0;
};

/// Per-instruction resolution outcome for the blue control instructions.
struct ControlInfo {
  std::vector<Addr> Targets;
  bool Indirect = false;
};

/// Scans one TAL block linearly, propagating register constants and the
/// abstract d, and resolves the targets of every jmpB/bzB it contains.
/// Conditional fallthrough (bzG untaken) does not invalidate constants:
/// neither branch arm of the pair writes general registers.
void resolveBlockTargets(const Program &Prog, const Block &B, Addr Begin,
                         std::vector<ControlInfo> &Out, Addr Base) {
  std::array<std::optional<int64_t>, Reg::NumRegs> Known;
  AbstractDest D; // Block preconditions require d = 0 at entry.

  const CodeMemory &Code = Prog.code();
  for (size_t I = 0; I != B.Insts.size(); ++I) {
    Addr A = Begin + (Addr)I;
    const Inst &Ins = B.Insts[I].I;
    ControlInfo &CI = Out[(size_t)(A - Base)];

    switch (Ins.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul: {
      std::optional<int64_t> L = Known[Ins.Rs.denseIndex()];
      std::optional<int64_t> R =
          Ins.HasImm ? std::optional<int64_t>(Ins.Imm.N)
                     : Known[Ins.Rt.denseIndex()];
      Known[Ins.Rd.denseIndex()] =
          (L && R) ? std::optional<int64_t>(evalAluOp(Ins.Op, *L, *R))
                   : std::nullopt;
      break;
    }
    case Opcode::Mov:
      Known[Ins.Rd.denseIndex()] = Ins.Imm.N;
      break;
    case Opcode::Ld:
      Known[Ins.Rd.denseIndex()] = std::nullopt;
      break;
    case Opcode::St:
      break;
    case Opcode::Jmp:
      if (Ins.C == Color::Green) {
        if (std::optional<int64_t> T = Known[Ins.Rd.denseIndex()])
          D = {AbstractDest::Candidate, *T};
        else
          D = {AbstractDest::Unknown, 0};
      } else {
        // The committed target is checked equal between d and Rd, so
        // either constant resolves it.
        if (std::optional<int64_t> T = Known[Ins.Rd.denseIndex()])
          CI.Targets.push_back(*T);
        else if (D.K == AbstractDest::Candidate)
          CI.Targets.push_back(D.Target);
        else
          CI.Indirect = true;
        // jmpB never falls through: anything after it in this TAL block is
        // reachable only by a jump from elsewhere, where these constants
        // do not hold.
        Known.fill(std::nullopt);
        D = {AbstractDest::Unknown, 0};
      }
      break;
    case Opcode::Bz:
      if (Ins.C == Color::Green) {
        if (std::optional<int64_t> T = Known[Ins.Rd.denseIndex()])
          D = {AbstractDest::Candidate, *T};
        else
          D = {AbstractDest::Unknown, 0};
      } else {
        if (std::optional<int64_t> T = Known[Ins.Rd.denseIndex()])
          CI.Targets.push_back(*T);
        else if (D.K == AbstractDest::Candidate)
          CI.Targets.push_back(D.Target);
        else
          CI.Indirect = true;
        D = {AbstractDest::Zero, 0};
      }
      break;
    }

    // Drop candidate targets outside code memory: committing such a
    // transfer wedges at the next fetch, so there is no CFG edge.
    CI.Targets.erase(std::remove_if(CI.Targets.begin(), CI.Targets.end(),
                                    [&](Addr T) { return !Code.contains(T); }),
                     CI.Targets.end());
    std::sort(CI.Targets.begin(), CI.Targets.end());
    CI.Targets.erase(std::unique(CI.Targets.begin(), CI.Targets.end()),
                     CI.Targets.end());
  }
}

} // namespace

std::string CFG::describeAddr(Addr A) const {
  const Block *B = talBlockOf(A);
  if (!B)
    return formatv("@%lld", (long long)A);
  Addr Off = A - Prog->addressOf(B->Label);
  if (Off == 0)
    return B->Label;
  return formatv("%s+%lld", B->Label.c_str(), (long long)Off);
}

Expected<CFG> CFG::build(const Program &Prog) {
  if (!Prog.isLaidOut())
    return makeError("CFG::build requires a laid-out program");

  CFG G;
  G.Prog = &Prog;
  size_t NumInsts = Prog.code().size();
  if (NumInsts == 0)
    return makeError("cannot build a CFG for a program with no code");
  G.Base = 1; // Layout assigns consecutive addresses starting at 1.
  G.Insts.resize(NumInsts);
  G.Locs.resize(NumInsts);
  G.TalBlocks.resize(NumInsts, nullptr);
  G.Targets.resize(NumInsts);

  std::vector<ControlInfo> Control(NumInsts);
  std::vector<Addr> TalEntries;
  for (const Block &B : Prog.blocks()) {
    Addr Begin = Prog.addressOf(B.Label);
    TalEntries.push_back(Begin);
    for (size_t I = 0; I != B.Insts.size(); ++I) {
      size_t Idx = (size_t)(Begin - G.Base) + I;
      G.Insts[Idx] = B.Insts[I].I;
      G.Locs[Idx] = B.Insts[I].Loc;
      G.TalBlocks[Idx] = &B;
    }
    resolveBlockTargets(Prog, B, Begin, Control, G.Base);
  }

  bool AnyIndirect = false;
  for (const ControlInfo &CI : Control)
    AnyIndirect |= CI.Indirect;
  G.Resolved = !AnyIndirect;

  // An unresolved blue transfer can land on any block entry (transfers
  // always target declared labels in well-formed programs).
  for (size_t I = 0; I != NumInsts; ++I) {
    if (Control[I].Indirect)
      Control[I].Targets = TalEntries;
    G.Targets[I] = Control[I].Targets;
  }

  // Leaders: TAL block entries, committed-transfer targets, and the
  // instruction after each committing (blue) control instruction.
  std::set<Addr> Leaders(TalEntries.begin(), TalEntries.end());
  Leaders.insert(G.Base);
  for (size_t I = 0; I != NumInsts; ++I) {
    const Inst &Ins = G.Insts[I];
    Addr A = G.Base + (Addr)I;
    bool Commits = Ins.isControlFlow() && Ins.C == Color::Blue;
    if (Commits) {
      if (A + 1 < G.limitAddr())
        Leaders.insert(A + 1);
      for (Addr T : G.Targets[I])
        Leaders.insert(T);
    }
  }

  G.BlockOf.resize(NumInsts);
  for (Addr A = G.Base; A < G.limitAddr(); ++A) {
    if (Leaders.count(A)) {
      BasicBlock BB;
      BB.Begin = A;
      G.Blocks.push_back(BB);
    }
    BasicBlock &BB = G.Blocks.back();
    ++BB.Size;
    G.BlockOf[G.instIndex(A)] = (uint32_t)(G.Blocks.size() - 1);
  }

  // Edges.
  for (uint32_t Id = 0; Id != G.Blocks.size(); ++Id) {
    BasicBlock &BB = G.Blocks[Id];
    Addr Last = BB.end() - 1;
    const Inst &Ins = G.inst(Last);
    std::set<uint32_t> Succs;
    bool Commits = Ins.isControlFlow() && Ins.C == Color::Blue;
    bool Fallthrough = !(Ins.Op == Opcode::Jmp && Ins.C == Color::Blue);
    if (Fallthrough && Last + 1 < G.limitAddr())
      Succs.insert(G.blockOf(Last + 1));
    if (Commits) {
      BB.HasIndirect = Control[G.instIndex(Last)].Indirect;
      for (Addr T : G.Targets[G.instIndex(Last)])
        Succs.insert(G.blockOf(T));
    }
    BB.Succs.assign(Succs.begin(), Succs.end());
    for (uint32_t S : BB.Succs)
      G.Blocks[S].Preds.push_back(Id);
  }

  Addr Entry = Prog.entryAddress();
  if (!G.contains(Entry))
    return makeError("entry address outside code memory");
  G.EntryBB = G.blockOf(Entry);

  // Reachability and reverse post-order from the entry block.
  G.Reachable.assign(G.Blocks.size(), 0);
  std::vector<uint32_t> Post;
  Post.reserve(G.Blocks.size());
  // Iterative DFS with an explicit successor cursor.
  std::vector<std::pair<uint32_t, size_t>> Stack;
  G.Reachable[G.EntryBB] = 1;
  Stack.push_back({G.EntryBB, 0});
  while (!Stack.empty()) {
    auto &[BB, Cursor] = Stack.back();
    if (Cursor < G.Blocks[BB].Succs.size()) {
      uint32_t S = G.Blocks[BB].Succs[Cursor++];
      if (!G.Reachable[S]) {
        G.Reachable[S] = 1;
        Stack.push_back({S, 0});
      }
    } else {
      Post.push_back(BB);
      Stack.pop_back();
    }
  }
  G.Rpo.assign(Post.rbegin(), Post.rend());
  return G;
}
