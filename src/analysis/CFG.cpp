//===- analysis/CFG.cpp ---------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"

#include "analysis/TargetSets.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <array>
#include <optional>
#include <set>

using namespace talft;
using namespace talft::analysis;

namespace {

/// The abstract destination register during the constant scan: known zero,
/// a known candidate target (the value jmpG/bzG parked there), or unknown.
struct AbstractDest {
  enum Kind : uint8_t { Zero, Candidate, Unknown } K = Zero;
  Addr Target = 0;
};

/// Per-instruction resolution outcome for the blue control instructions.
struct ControlInfo {
  std::vector<Addr> Targets;
  bool Indirect = false;
};

/// Layer 0: scans one TAL block linearly, propagating register constants
/// and the abstract d, and resolves the targets of every jmpB/bzB it
/// contains. Conditional fallthrough (bzG untaken) does not invalidate
/// constants: neither branch arm of the pair writes general registers.
void resolveBlockTargets(const Program &Prog, const Block &B, Addr Begin,
                         std::vector<ControlInfo> &Out, Addr Base) {
  std::array<std::optional<int64_t>, Reg::NumRegs> Known;
  AbstractDest D; // Block preconditions require d = 0 at entry.

  const CodeMemory &Code = Prog.code();
  for (size_t I = 0; I != B.Insts.size(); ++I) {
    Addr A = Begin + (Addr)I;
    const Inst &Ins = B.Insts[I].I;
    ControlInfo &CI = Out[(size_t)(A - Base)];

    switch (Ins.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul: {
      std::optional<int64_t> L = Known[Ins.Rs.denseIndex()];
      std::optional<int64_t> R =
          Ins.HasImm ? std::optional<int64_t>(Ins.Imm.N)
                     : Known[Ins.Rt.denseIndex()];
      Known[Ins.Rd.denseIndex()] =
          (L && R) ? std::optional<int64_t>(evalAluOp(Ins.Op, *L, *R))
                   : std::nullopt;
      break;
    }
    case Opcode::Mov:
      Known[Ins.Rd.denseIndex()] = Ins.Imm.N;
      break;
    case Opcode::Ld:
      Known[Ins.Rd.denseIndex()] = std::nullopt;
      break;
    case Opcode::St:
      break;
    case Opcode::Jmp:
      if (Ins.C == Color::Green) {
        if (std::optional<int64_t> T = Known[Ins.Rd.denseIndex()])
          D = {AbstractDest::Candidate, *T};
        else
          D = {AbstractDest::Unknown, 0};
      } else {
        // The committed target is checked equal between d and Rd, so
        // either constant resolves it.
        if (std::optional<int64_t> T = Known[Ins.Rd.denseIndex()])
          CI.Targets.push_back(*T);
        else if (D.K == AbstractDest::Candidate)
          CI.Targets.push_back(D.Target);
        else
          CI.Indirect = true;
        // jmpB never falls through: anything after it in this TAL block is
        // reachable only by a jump from elsewhere, where these constants
        // do not hold.
        Known.fill(std::nullopt);
        D = {AbstractDest::Unknown, 0};
      }
      break;
    case Opcode::Bz:
      if (Ins.C == Color::Green) {
        if (std::optional<int64_t> T = Known[Ins.Rd.denseIndex()])
          D = {AbstractDest::Candidate, *T};
        else
          D = {AbstractDest::Unknown, 0};
      } else {
        if (std::optional<int64_t> T = Known[Ins.Rd.denseIndex()])
          CI.Targets.push_back(*T);
        else if (D.K == AbstractDest::Candidate)
          CI.Targets.push_back(D.Target);
        else
          CI.Indirect = true;
        D = {AbstractDest::Zero, 0};
      }
      break;
    }

    // Drop candidate targets outside code memory: committing such a
    // transfer wedges at the next fetch, so there is no CFG edge.
    CI.Targets.erase(std::remove_if(CI.Targets.begin(), CI.Targets.end(),
                                    [&](Addr T) { return !Code.contains(T); }),
                     CI.Targets.end());
    std::sort(CI.Targets.begin(), CI.Targets.end());
    CI.Targets.erase(std::unique(CI.Targets.begin(), CI.Targets.end()),
                     CI.Targets.end());
  }
}

} // namespace

const char *talft::analysis::provenanceName(TargetProvenance P) {
  switch (P) {
  case TargetProvenance::Exact:
    return "exact";
  case TargetProvenance::TypeNarrowed:
    return "type-narrowed";
  case TargetProvenance::OverApproximated:
    return "over-approximated";
  }
  return "unknown";
}

std::string CFG::describeAddr(Addr A) const {
  const Block *B = talBlockOf(A);
  if (!B)
    return formatv("@%lld", (long long)A);
  Addr Off = A - Prog->addressOf(B->Label);
  if (Off == 0)
    return B->Label;
  return formatv("%s+%lld", B->Label.c_str(), (long long)Off);
}

CFG::ResolutionSummary CFG::resolutionSummary() const {
  ResolutionSummary Sum;
  for (Addr A = minAddr(); A != limitAddr(); ++A) {
    if (!isCommit(A))
      continue;
    ++Sum.Commits;
    switch (targetProvenance(A)) {
    case TargetProvenance::Exact:
      ++Sum.Exact;
      break;
    case TargetProvenance::TypeNarrowed:
      ++Sum.TypeNarrowed;
      Sum.UnresolvedTargets += controlTargets(A).size();
      break;
    case TargetProvenance::OverApproximated:
      ++Sum.OverApproximated;
      Sum.UnresolvedTargets += controlTargets(A).size();
      break;
    }
  }
  return Sum;
}

void CFG::assembleGraph() {
  Blocks.clear();
  BlockOf.assign(Insts.size(), 0);
  Reachable.clear();
  Rpo.clear();

  // Leaders: TAL block entries, committed-transfer targets, and the
  // instruction after each committing (blue) control instruction.
  std::set<Addr> Leaders;
  Leaders.insert(Base);
  for (const Block &B : Prog->blocks())
    Leaders.insert(Prog->addressOf(B.Label));
  for (size_t I = 0; I != Insts.size(); ++I) {
    const Inst &Ins = Insts[I];
    Addr A = Base + (Addr)I;
    if (Ins.isControlFlow() && Ins.C == Color::Blue) {
      if (A + 1 < limitAddr())
        Leaders.insert(A + 1);
      for (Addr T : Targets[I])
        Leaders.insert(T);
    }
  }

  for (Addr A = Base; A < limitAddr(); ++A) {
    if (Leaders.count(A)) {
      BasicBlock BB;
      BB.Begin = A;
      Blocks.push_back(BB);
    }
    BasicBlock &BB = Blocks.back();
    ++BB.Size;
    BlockOf[instIndex(A)] = (uint32_t)(Blocks.size() - 1);
  }

  // Edges.
  for (uint32_t Id = 0; Id != Blocks.size(); ++Id) {
    BasicBlock &BB = Blocks[Id];
    Addr Last = BB.end() - 1;
    const Inst &Ins = inst(Last);
    std::set<uint32_t> Succs;
    bool Commits = Ins.isControlFlow() && Ins.C == Color::Blue;
    bool Fallthrough = !(Ins.Op == Opcode::Jmp && Ins.C == Color::Blue);
    if (Fallthrough && Last + 1 < limitAddr())
      Succs.insert(blockOf(Last + 1));
    if (Commits) {
      BB.HasIndirect =
          targetProvenance(Last) != TargetProvenance::Exact;
      for (Addr T : Targets[instIndex(Last)])
        Succs.insert(blockOf(T));
    }
    BB.Succs.assign(Succs.begin(), Succs.end());
    for (uint32_t S : BB.Succs)
      Blocks[S].Preds.push_back(Id);
  }

  EntryBB = blockOf(Prog->entryAddress());

  // Reachability and reverse post-order from the entry block.
  Reachable.assign(Blocks.size(), 0);
  std::vector<uint32_t> Post;
  Post.reserve(Blocks.size());
  // Iterative DFS with an explicit successor cursor.
  std::vector<std::pair<uint32_t, size_t>> Stack;
  Reachable[EntryBB] = 1;
  Stack.push_back({EntryBB, 0});
  while (!Stack.empty()) {
    auto &[BB, Cursor] = Stack.back();
    if (Cursor < Blocks[BB].Succs.size()) {
      uint32_t S = Blocks[BB].Succs[Cursor++];
      if (!Reachable[S]) {
        Reachable[S] = 1;
        Stack.push_back({S, 0});
      }
    } else {
      Post.push_back(BB);
      Stack.pop_back();
    }
  }
  Rpo.assign(Post.rbegin(), Post.rend());
}

Expected<CFG> CFG::build(const Program &Prog) {
  if (!Prog.isLaidOut())
    return makeError("CFG::build requires a laid-out program");

  CFG G;
  G.Prog = &Prog;
  size_t NumInsts = Prog.code().size();
  if (NumInsts == 0)
    return makeError("cannot build a CFG for a program with no code");
  G.Base = 1; // Layout assigns consecutive addresses starting at 1.
  G.Insts.resize(NumInsts);
  G.Locs.resize(NumInsts);
  G.TalBlocks.resize(NumInsts, nullptr);
  G.Targets.resize(NumInsts);
  G.Provs.assign(NumInsts, TargetProvenance::Exact);
  G.Layers.assign(NumInsts, 0);

  std::vector<ControlInfo> Control(NumInsts);
  std::vector<Addr> TalEntries;
  for (const Block &B : Prog.blocks()) {
    Addr Begin = Prog.addressOf(B.Label);
    TalEntries.push_back(Begin);
    for (size_t I = 0; I != B.Insts.size(); ++I) {
      size_t Idx = (size_t)(Begin - G.Base) + I;
      G.Insts[Idx] = B.Insts[I].I;
      G.Locs[Idx] = B.Insts[I].Loc;
      G.TalBlocks[Idx] = &B;
    }
    resolveBlockTargets(Prog, B, Begin, Control, G.Base);
  }
  std::sort(TalEntries.begin(), TalEntries.end());

  // A layer-0-unresolved commit can land on any block entry (transfers
  // always target declared labels in well-formed programs); the ladder
  // below narrows that.
  bool AnyIndirect = false;
  for (size_t I = 0; I != NumInsts; ++I) {
    G.Targets[I] = Control[I].Targets;
    if (Control[I].Indirect) {
      G.Targets[I] = TalEntries;
      G.Provs[I] = TargetProvenance::OverApproximated;
      AnyIndirect = true;
    }
  }

  if (!G.contains(Prog.entryAddress()))
    return makeError("entry address outside code memory");
  G.assembleGraph();

  // Ladder fixpoint: layers 2 and 1 sharpen target sets, sharpened sets
  // shrink the edge relation, and fewer edges can sharpen the flow sets
  // again. Sets only shrink, so this converges; the round cap bounds
  // pathological cases.
  if (AnyIndirect) {
    for (int Round = 0; Round != 4; ++Round) {
      std::vector<JumpResolution> Refined = refineIndirectTargets(G);
      bool Changed = false;
      for (JumpResolution &R : Refined) {
        size_t I = G.instIndex(R.At);
        if (G.Provs[I] == R.Prov && G.Targets[I] == R.Targets)
          continue;
        Changed = true;
        G.Provs[I] = R.Prov;
        G.Layers[I] = R.Layer;
        G.Targets[I] = std::move(R.Targets);
      }
      if (!Changed)
        break;
      G.assembleGraph();
    }
  }

  G.Resolved = true;
  for (Addr A = G.minAddr(); A != G.limitAddr(); ++A)
    if (G.isCommit(A) && G.targetProvenance(A) != TargetProvenance::Exact)
      G.Resolved = false;
  return G;
}
