//===- wile/Kernels.cpp ---------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "wile/Kernels.h"

using namespace talft::wile;

const std::vector<Kernel> &talft::wile::benchmarkKernels() {
  static const std::vector<Kernel> Kernels = {

      {"164.gzip", "SPEC CINT2000",
       "deflate's longest-match scan: rolling hash over a window, "
       "match-count accumulation",
       R"(
var seed = 7;
var i = 0;
var pos = 2;
var matches = 0;
var hash = 0;
array buf[64];
while (i != 64) { seed = seed * 75 + 74; buf[i] = seed; i = i + 1; }
while (pos != 64) {
  hash = buf[pos - 1] * 31 + buf[pos - 2];
  if (buf[pos] == hash) { matches = matches + 1; }
  pos = pos + 1;
}
output(matches);
output(hash);
)",
       false},

      {"175.vpr", "SPEC CINT2000",
       "placement cost estimation: per-net squared wirelength accumulation",
       R"(
var n = 160;
var x = 3;
var y = 5;
var dx = 0;
var dy = 0;
var cost = 0;
while (n != 0) {
  x = x * 17 + 1;
  y = y * 23 + 7;
  dx = x - y;
  dy = y - x * 3;
  cost = cost + dx * dx + dy * dy;
  n = n - 1;
}
output(cost);
)",
       true},

      {"176.gcc", "SPEC CINT2000",
       "rtl peephole scan: pattern hashing over instruction words with "
       "match dispatch",
       R"(
var seed = 91;
var i = 0;
var hits = 0;
var word = 0;
var key = 0;
array insns[48];
while (i != 48) { seed = seed * 69 + 5; insns[i] = seed; i = i + 1; }
i = 0;
while (i != 48) {
  word = insns[i];
  key = word * 2654435761;
  if (key == word) { hits = hits + 1; } else { hits = hits + 0; }
  if (word - key != 0) { word = word - key; }
  i = i + 1;
}
output(hits);
output(word);
)",
       false},

      {"181.mcf", "SPEC CINT2000",
       "network-simplex arc sweep: distance relaxation traffic over "
       "node/arc tables",
       R"(
var rounds = 8;
var u = 0;
var next = 0;
array dist[16];
array wgt[16];
var i = 0;
var s = 3;
while (i != 16) { s = s * 13 + 1; wgt[i] = s * s; dist[i] = 1000000; i = i + 1; }
dist[0] = 0;
while (rounds != 0) {
  u = 0;
  while (u != 15) {
    next = u + 1;
    dist[next] = dist[u] + wgt[next];
    u = next;
  }
  rounds = rounds - 1;
}
output(dist[15]);
)",
       false},

      {"186.crafty", "SPEC CINT2000",
       "board evaluation: weighted material/mobility sums over scalar "
       "piece state",
       R"(
var plies = 120;
var pawns = 8;
var knights = 2;
var mobility = 13;
var phase = 3;
var score = 0;
while (plies != 0) {
  score = pawns * 100 + knights * 320 + mobility * 4;
  mobility = mobility * 5 + phase - score * 2;
  phase = phase + mobility * 3 - pawns;
  pawns = pawns + phase * 7 - knights * 11;
  knights = knights + score - phase * 5;
  plies = plies - 1;
}
output(score);
)",
       true},

      {"197.parser", "SPEC CINT2000",
       "dictionary lookup: linear probe with exact-match tests",
       R"(
var i = 0;
var seed = 17;
var probes = 24;
var found = 0;
var probe = 0;
array dict[32];
while (i != 32) { seed = seed * 29 + 11; dict[i] = seed; i = i + 1; }
while (probes != 0) {
  probe = probe * 29 + 11;
  i = 0;
  while (i != 32) {
    if (dict[i] == probe) { found = found + 1; }
    i = i + 1;
  }
  probes = probes - 1;
}
output(found);
)",
       false},

      {"254.gap", "SPEC CINT2000",
       "group theory workhorse: permutation composition r = p ∘ q",
       R"(
var n = 16;
var i = 0;
var reps = 12;
var c = 0;
var acc = 0;
array p[16];
array q[16];
array r[16];
while (i != 16) {
  p[i] = c;
  c = c + 5;
  if (c == 20) { c = 4; }
  if (c == 21) { c = 5; }
  if (c == 16) { c = 0; }
  if (c == 17) { c = 1; }
  if (c == 18) { c = 2; }
  if (c == 19) { c = 3; }
  q[i] = 15 - i;
  i = i + 1;
}
while (reps != 0) {
  i = 0;
  while (i != 16) { r[i] = p[q[i]]; i = i + 1; }
  i = 0;
  while (i != 16) { p[i] = r[i]; i = i + 1; }
  reps = reps - 1;
}
i = 0;
while (i != 16) { acc = acc * 16 + p[i]; i = i + 1; }
output(acc);
)",
       false},

      {"255.vortex", "SPEC CINT2000",
       "object store: hash-table probe walk with key mixing",
       R"(
var i = 0;
var slot = 0;
var lookups = 48;
var key = 5;
var hits = 0;
array table[16];
while (i != 16) { table[i] = i * 2654435761 + 1; i = i + 1; }
while (lookups != 0) {
  key = key * 2654435761 + 13;
  if (table[slot] == key) { hits = hits + 1; }
  table[slot] = key;
  slot = slot + 1;
  if (slot == 16) { slot = 0; }
  lookups = lookups - 1;
}
output(hits);
output(table[3]);
)",
       false},

      {"256.bzip2", "SPEC CINT2000",
       "run-length encoding pass: run detection with exact-match tests",
       R"(
var i = 0;
var c = 0;
var run = 1;
var prev = 0;
var cur = 0;
array buf[96];
while (i != 96) {
  buf[i] = c;
  c = c + 1;
  if (c == 3) { c = 0; }
  if (i * 1 == 40) { c = 0; }
  i = i + 1;
}
prev = buf[0];
i = 1;
while (i != 96) {
  cur = buf[i];
  if (cur == prev) {
    run = run + 1;
  } else {
    output(run);
    run = 1;
    prev = cur;
  }
  i = i + 1;
}
output(run);
)",
       false},

      {"300.twolf", "SPEC CINT2000",
       "simulated-annealing cost delta: scalar overlap/penalty arithmetic",
       R"(
var moves = 140;
var xa = 7;
var xb = 12;
var overlap = 0;
var penalty = 0;
var delta = 0;
var accepted = 0;
while (moves != 0) {
  xa = xa * 21 + 9;
  xb = xb * 13 + 3;
  overlap = (xa - xb) * (xa - xb);
  penalty = overlap * 3 + xa * 2 - xb;
  delta = penalty - overlap * 2;
  accepted = accepted + delta * delta;
  moves = moves - 1;
}
output(accepted);
)",
       true},

      {"adpcm", "MediaBench",
       "ADPCM encode inner loop: prediction error and step adaptation",
       R"(
var samples = 160;
var wave = 100;
var pred = 0;
var step = 7;
var delta = 0;
var energy = 0;
while (samples != 0) {
  wave = wave * 41 + 3;
  delta = wave - pred;
  pred = pred + delta * 3 - step;
  step = step + delta - pred * 2;
  energy = energy + delta * delta;
  samples = samples - 1;
}
output(energy);
output(pred);
)",
       true},

      {"epic", "MediaBench",
       "pyramid image coder: 3-tap separable filter sweep",
       R"(
var i = 0;
var seed = 3;
var acc = 0;
array img[40];
array outp[40];
while (i != 40) { seed = seed * 19 + 1; img[i] = seed; i = i + 1; }
i = 1;
while (i != 39) {
  outp[i] = img[i - 1] + img[i] * 2 + img[i + 1];
  i = i + 1;
}
i = 1;
while (i != 39) { acc = acc + outp[i]; i = i + 1; }
output(acc);
)",
       false},

      {"g721", "MediaBench",
       "G.721 adaptive predictor: two-pole/six-zero scalar recurrence",
       R"(
var samples = 120;
var inp = 13;
var a1 = 2;
var a2 = 1;
var z1 = 0;
var z2 = 0;
var est = 0;
var err = 0;
var acc = 0;
while (samples != 0) {
  inp = inp * 37 + 5;
  est = a1 * z1 + a2 * z2;
  err = inp - est;
  a1 = a1 + err * 3;
  a2 = a2 + err - a1 * 2;
  z2 = z1;
  z1 = inp + err;
  acc = acc + err * err;
  samples = samples - 1;
}
output(acc);
)",
       true},

      {"pegwit", "MediaBench",
       "elliptic-curve field arithmetic: square-and-multiply ladder",
       R"(
var bits = 48;
var acc = 1;
var base = 7;
var mask = 1;
var digest = 0;
while (bits != 0) {
  acc = acc * acc + 1;
  acc = acc * base - mask;
  mask = mask * 3 + acc;
  digest = digest + acc * 5 + mask;
  bits = bits - 1;
}
output(digest);
)",
       true},

      {"jpeg", "MediaBench",
       "8-point 1-D DCT butterfly, fully unrolled at constant indices "
       "(type-checkable array traffic)",
       R"(
var frames = 24;
var s = 11;
var t0 = 0;
var t1 = 0;
var t2 = 0;
var t3 = 0;
var u0 = 0;
var u1 = 0;
var u2 = 0;
var u3 = 0;
var sum = 0;
array blk[8];
while (frames != 0) {
  s = s * 57 + 2;  blk[0] = s;
  s = s * 57 + 2;  blk[1] = s;
  s = s * 57 + 2;  blk[2] = s;
  s = s * 57 + 2;  blk[3] = s;
  s = s * 57 + 2;  blk[4] = s;
  s = s * 57 + 2;  blk[5] = s;
  s = s * 57 + 2;  blk[6] = s;
  s = s * 57 + 2;  blk[7] = s;
  t0 = blk[0] + blk[7];
  t1 = blk[1] + blk[6];
  t2 = blk[2] + blk[5];
  t3 = blk[3] + blk[4];
  u0 = blk[0] - blk[7];
  u1 = blk[1] - blk[6];
  u2 = blk[2] - blk[5];
  u3 = blk[3] - blk[4];
  blk[0] = t0 + t3;
  blk[1] = t1 + t2;
  blk[2] = t1 - t2;
  blk[3] = t0 - t3;
  blk[4] = u0 * 3 + u1;
  blk[5] = u1 * 3 - u2;
  blk[6] = u2 * 3 + u3;
  blk[7] = u3 * 3 - u0;
  sum = sum + blk[0] * 2 - blk[4] + blk[2] * 3 - blk[6];
  frames = frames - 1;
}
output(sum);
)",
       true},
  };
  return Kernels;
}
