//===- wile/Optimize.h - IR-level optimizations -----------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Local (per-block) optimizations over the Wile IR, run before either
/// backend — the paper's VELOCITY compiler likewise applied its
/// optimizations before the reliability transformation:
///
///   - constant folding: binary ops over known constants become Const;
///   - copy propagation: uses of `dst = src + 0` read src directly;
///   - address strengthening: loads/stores whose dynamic address register
///     is known constant become constant-addressed (fewer address movs;
///     the checker's own constant refinement already covers the
///     block-local typability of such accesses);
///   - dead code elimination: pure ops (Const/Bin) writing temps that are
///     never read afterwards are dropped. Loads are never deleted: a wild
///     load may trap, so removing one is not behavior-preserving under
///     the trapping policy.
///
/// All state is per-block (blocks may have multiple predecessors, and the
/// IR is not in SSA form), so the passes are sound without any CFG
/// analysis.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_WILE_OPTIMIZE_H
#define TALFT_WILE_OPTIMIZE_H

#include "wile/IR.h"

namespace talft::wile {

/// Counters for what the pass did (for tests and reporting).
struct OptStats {
  unsigned Folded = 0;
  unsigned Propagated = 0;
  unsigned AddressesStrengthened = 0;
  unsigned Eliminated = 0;

  unsigned total() const {
    return Folded + Propagated + AddressesStrengthened + Eliminated;
  }
};

/// Optimizes \p IR in place.
OptStats optimizeIR(IRProgram &IR);

} // namespace talft::wile

#endif // TALFT_WILE_OPTIMIZE_H
