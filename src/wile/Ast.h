//===- wile/Ast.h - The Wile source language -------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wile is the small imperative language our benchmark kernels are written
/// in — it plays the role SPEC CINT2000 / MediaBench sources played in the
/// paper's evaluation. It has 64-bit integer variables, fixed-size global
/// arrays, while loops, if/else, and arithmetic matching the TALFT ALU
/// (add/sub/mul; conditions are zero-tests and (in)equalities, which lower
/// to the machine's bz instruction through a subtraction).
///
///   var x = 5;
///   array a[8] @ 1000;          // 8 cells at base address 1000
///   while (x != 0) { a[0] = a[0] + x; x = x - 1; }
///   output(a[0]);               // write to the memory-mapped output cell
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_WILE_AST_H
#define TALFT_WILE_AST_H

#include "isa/Inst.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace talft::wile {

/// An arithmetic expression.
struct Expr {
  enum class Kind : uint8_t {
    Const,   // N
    Var,     // Name
    Index,   // Name[Lhs]
    Bin,     // Lhs Op Rhs
  };

  Kind K = Kind::Const;
  int64_t N = 0;
  std::string Name;
  Opcode Op = Opcode::Add;
  std::unique_ptr<Expr> Lhs;
  std::unique_ptr<Expr> Rhs;
  SourceLoc Loc;
};

/// A branch condition: a zero-test of an expression, or an (in)equality
/// (lowered to a zero-test of the difference).
struct Cond {
  enum class Kind : uint8_t { NonZero, Eq, Ne };
  Kind K = Kind::NonZero;
  std::unique_ptr<Expr> Lhs;
  std::unique_ptr<Expr> Rhs; // Eq / Ne only.
};

/// A statement.
struct Stmt {
  enum class Kind : uint8_t {
    Assign,     // Name = Value
    StoreIndex, // Name[Index] = Value
    Output,     // output(Value)
    While,      // while (C) Body
    If,         // if (C) Body else Else
  };

  Kind K = Kind::Assign;
  std::string Name;
  std::unique_ptr<Expr> Index;
  std::unique_ptr<Expr> Value;
  std::unique_ptr<Cond> C;
  std::vector<std::unique_ptr<Stmt>> Body;
  std::vector<std::unique_ptr<Stmt>> Else;
  SourceLoc Loc;
};

/// A variable declaration.
struct VarDecl {
  std::string Name;
  int64_t Init = 0;
  SourceLoc Loc;
};

/// A global array declaration: Size cells of zeros at a fixed base
/// address (auto-assigned when Base is 0).
struct ArrayDecl {
  std::string Name;
  int64_t Size = 0;
  int64_t Base = 0;
  SourceLoc Loc;
};

/// A whole Wile program.
struct WileProgram {
  std::vector<VarDecl> Vars;
  std::vector<ArrayDecl> Arrays;
  std::vector<std::unique_ptr<Stmt>> Body;
};

} // namespace talft::wile

#endif // TALFT_WILE_AST_H
