//===- wile/Evaluate.cpp --------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "wile/Evaluate.h"

#include "sim/Step.h"
#include "support/StringUtils.h"

using namespace talft;
using namespace talft::wile;

Expected<ExecutionProfile> talft::wile::profileExecution(
    const CompiledProgram &CP, uint64_t MaxSteps) {
  Expected<MachineState> Init = CP.Prog.initialState();
  if (!Init)
    return Init.takeError();
  MachineState S = std::move(*Init);

  ExecutionProfile Profile;
  Addr Exit = CP.Prog.exitAddress();
  while (Profile.Steps < MaxSteps) {
    if (atExit(S, Exit)) {
      Profile.Status = RunStatus::Halted;
      return Profile;
    }
    // A fetch about to happen at a block entry is one visit.
    if (!S.IR) {
      if (const Block *B = CP.Prog.blockAt(S.pcG().N))
        ++Profile.BlockVisits[B->Label];
    }
    StepResult SR = step(S);
    if (SR.Status == StepStatus::Stuck) {
      Profile.Status = RunStatus::Stuck;
      return Profile;
    }
    ++Profile.Steps;
    if (SR.Output)
      Profile.Trace.push_back(*SR.Output);
    if (SR.Status == StepStatus::Fault) {
      Profile.Status = RunStatus::FaultDetected;
      return Profile;
    }
  }
  return makeError(formatv("program did not halt within %llu steps",
                           (unsigned long long)MaxSteps));
}

uint64_t talft::wile::totalCycles(const CompiledProgram &CP,
                                  const ExecutionProfile &Profile,
                                  const PipelineConfig &Config) {
  uint64_t Total = 0;
  for (const auto &[Label, Visits] : Profile.BlockVisits) {
    auto It = CP.CostStreams.find(Label);
    if (It == CP.CostStreams.end())
      continue;
    Total += Visits * blockCycles(It->second, Config);
  }
  return Total;
}
