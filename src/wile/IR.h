//===- wile/IR.h - Three-address CFG IR for Wile ---------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wile lowers to a conventional three-address IR over a control-flow
/// graph. Values live in numbered virtual registers: variables get the
/// fixed ids [0, NumVars); statement temporaries reuse ids from NumVars
/// upwards (they never live across statements, so the pool resets).
///
/// This is the level the paper's reliability transformation operates at
/// ("the reliability transformation was compiled into the low level code
/// immediately before register allocation and scheduling"): the backends
/// in Codegen.h map one IR to the unprotected instruction stream and to
/// the duplicated green/blue TALFT stream.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_WILE_IR_H
#define TALFT_WILE_IR_H

#include "isa/Inst.h"

#include <cstdint>
#include <string>
#include <vector>

namespace talft::wile {

/// One three-address operation.
struct IROp {
  enum class Kind : uint8_t {
    Const, // v[Dst] = Imm
    Bin,   // v[Dst] = v[A] op v[B]
    Load,  // v[Dst] = mem[address]
    Store, // mem[address] = v[A]
  };
  /// Addressing of Load/Store: a constant address (Addr) when AddrTemp is
  /// -1, otherwise the dynamic address v[AddrTemp].
  Kind K = Kind::Const;
  Opcode Op = Opcode::Add;
  int Dst = -1;
  int A = -1;
  int B = -1;
  int64_t Imm = 0;
  int AddrTemp = -1;
  int64_t Addr = 0;
};

/// A basic block with one terminator.
struct IRBlock {
  std::string Label;
  std::vector<IROp> Ops;

  enum class Term : uint8_t {
    Jump,     // goto Target0
    CondZero, // if v[CondTemp] == 0 goto Target0 else fall through to
              // Target1 (which is laid out immediately after this block)
    Halt,     // transfer to the exit block
  };
  Term T = Term::Halt;
  std::string Target0;
  std::string Target1;
  int CondTemp = -1;
};

/// A lowered program.
struct IRProgram {
  std::vector<IRBlock> Blocks; // Blocks[0] is the entry.
  std::vector<std::string> VarNames;
  /// First temp id (== number of variables).
  int FirstTemp = 0;
  /// One past the largest virtual register id used.
  int NumRegs = 0;
  /// Array storage: name, base address, size (cells are ints, zeroed).
  struct ArrayInfo {
    std::string Name;
    int64_t Base = 0;
    int64_t Size = 0;
  };
  std::vector<ArrayInfo> Arrays;
  /// The memory-mapped output cell `output(...)` writes to.
  int64_t OutputAddr = 0;
};

} // namespace talft::wile

#endif // TALFT_WILE_IR_H
