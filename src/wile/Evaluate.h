//===- wile/Evaluate.h - Cycle accounting for compiled programs -----------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation methodology behind our Figure 10 reproduction: a
/// compiled program's cost is the sum over basic blocks of
/// (dynamic visit count) x (statically scheduled block cycles). Visit
/// counts come from actually executing the program on the TALFT semantics
/// (the analogue of the paper's reference-input runs); block cycles come
/// from the perf list scheduler and in-order issue model.
///
/// The same CompiledProgram is costed under different PipelineConfigs —
/// in particular with the green-before-blue ordering constraint on or off
/// — without re-running the program: the visit counts are
/// schedule-independent.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_WILE_EVALUATE_H
#define TALFT_WILE_EVALUATE_H

#include "perf/Scheduler.h"
#include "sim/Machine.h"
#include "support/Error.h"
#include "wile/Codegen.h"

#include <map>

namespace talft::wile {

/// A program's dynamic profile: the observable trace plus per-block visit
/// counts.
struct ExecutionProfile {
  RunStatus Status = RunStatus::OutOfSteps;
  uint64_t Steps = 0;
  OutputTrace Trace;
  std::map<std::string, uint64_t> BlockVisits;
};

/// Executes \p CP on the TALFT semantics, counting block visits.
Expected<ExecutionProfile> profileExecution(const CompiledProgram &CP,
                                            uint64_t MaxSteps);

/// Total modelled cycles of \p CP given a profile and pipeline.
uint64_t totalCycles(const CompiledProgram &CP,
                     const ExecutionProfile &Profile,
                     const PipelineConfig &Config);

} // namespace talft::wile

#endif // TALFT_WILE_EVALUATE_H
