//===- wile/Optimize.cpp --------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "wile/Optimize.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

using namespace talft;
using namespace talft::wile;

namespace {

/// What the forward pass knows about a virtual register.
struct Known {
  std::optional<int64_t> Const;
  /// A register currently holding the same value, or -1.
  int CopyOf = -1;
};

class BlockOptimizer {
public:
  BlockOptimizer(IRBlock &B, int FirstTemp, OptStats &Stats)
      : B(B), FirstTemp(FirstTemp), Stats(Stats) {}

  void run() {
    forward();
    eliminateDead();
  }

private:
  IRBlock &B;
  int FirstTemp;
  OptStats &Stats;
  std::map<int, Known> Facts;

  /// Invalidate everything that referred to \p Reg before it changed.
  void kill(int Reg) {
    Facts.erase(Reg);
    for (auto &[R, K] : Facts)
      if (K.CopyOf == Reg)
        K.CopyOf = -1;
  }

  std::optional<int64_t> constOf(int Reg) const {
    auto It = Facts.find(Reg);
    if (It == Facts.end())
      return std::nullopt;
    return It->second.Const;
  }

  /// Rewrites an operand through copy facts.
  void propagate(int &Reg) {
    if (Reg == -1)
      return;
    auto It = Facts.find(Reg);
    if (It != Facts.end() && It->second.CopyOf != -1) {
      Reg = It->second.CopyOf;
      ++Stats.Propagated;
    }
  }

  void forward() {
    for (IROp &Op : B.Ops) {
      switch (Op.K) {
      case IROp::Kind::Const:
        kill(Op.Dst);
        Facts[Op.Dst] = {Op.Imm, -1};
        break;

      case IROp::Kind::Bin: {
        propagate(Op.A);
        propagate(Op.B);
        std::optional<int64_t> CA = constOf(Op.A);
        std::optional<int64_t> CB = constOf(Op.B);
        if (CA && CB) {
          int64_t V = evalAluOp(Op.Op, *CA, *CB);
          int Dst = Op.Dst;
          Op = IROp();
          Op.K = IROp::Kind::Const;
          Op.Dst = Dst;
          Op.Imm = V;
          ++Stats.Folded;
          kill(Dst);
          Facts[Dst] = {V, -1};
          break;
        }
        // dst = src + 0 / src - 0 / src * 1: dst copies src.
        int Src = -1;
        if ((Op.Op == Opcode::Add || Op.Op == Opcode::Sub) && CB &&
            *CB == 0)
          Src = Op.A;
        else if (Op.Op == Opcode::Add && CA && *CA == 0)
          Src = Op.B;
        else if (Op.Op == Opcode::Mul && CB && *CB == 1)
          Src = Op.A;
        else if (Op.Op == Opcode::Mul && CA && *CA == 1)
          Src = Op.B;
        kill(Op.Dst);
        if (Src != -1 && Src != Op.Dst)
          Facts[Op.Dst] = {std::nullopt, Src};
        break;
      }

      case IROp::Kind::Load:
        if (Op.AddrTemp != -1) {
          propagate(Op.AddrTemp);
          if (std::optional<int64_t> C = constOf(Op.AddrTemp)) {
            Op.AddrTemp = -1;
            Op.Addr = *C;
            ++Stats.AddressesStrengthened;
          }
        }
        kill(Op.Dst);
        break;

      case IROp::Kind::Store:
        propagate(Op.A);
        if (Op.AddrTemp != -1) {
          propagate(Op.AddrTemp);
          if (std::optional<int64_t> C = constOf(Op.AddrTemp)) {
            Op.AddrTemp = -1;
            Op.Addr = *C;
            ++Stats.AddressesStrengthened;
          }
        }
        break;
      }
    }
    if (B.T == IRBlock::Term::CondZero) {
      auto It = Facts.find(B.CondTemp);
      if (It != Facts.end() && It->second.CopyOf != -1) {
        B.CondTemp = It->second.CopyOf;
        ++Stats.Propagated;
      }
    }
  }

  void eliminateDead() {
    // Live-out: every variable (they live across blocks) plus the
    // terminator's test register.
    std::set<int> Live;
    for (int V = 0; V != FirstTemp; ++V)
      Live.insert(V);
    if (B.T == IRBlock::Term::CondZero)
      Live.insert(B.CondTemp);

    std::vector<IROp> Kept;
    Kept.reserve(B.Ops.size());
    for (size_t I = B.Ops.size(); I-- > 0;) {
      IROp &Op = B.Ops[I];
      bool HasDst = Op.K == IROp::Kind::Const || Op.K == IROp::Kind::Bin ||
                    Op.K == IROp::Kind::Load;
      bool Pure = Op.K == IROp::Kind::Const || Op.K == IROp::Kind::Bin;
      if (Pure && HasDst && !Live.count(Op.Dst)) {
        ++Stats.Eliminated;
        continue;
      }
      if (HasDst)
        Live.erase(Op.Dst);
      if (Op.K == IROp::Kind::Bin) {
        Live.insert(Op.A);
        Live.insert(Op.B);
      }
      if (Op.K == IROp::Kind::Store)
        Live.insert(Op.A);
      if ((Op.K == IROp::Kind::Load || Op.K == IROp::Kind::Store) &&
          Op.AddrTemp != -1)
        Live.insert(Op.AddrTemp);
      Kept.push_back(Op);
    }
    std::reverse(Kept.begin(), Kept.end());
    B.Ops = std::move(Kept);
  }
};

} // namespace

OptStats talft::wile::optimizeIR(IRProgram &IR) {
  OptStats Stats;
  for (IRBlock &B : IR.Blocks)
    BlockOptimizer(B, IR.FirstTemp, Stats).run();
  return Stats;
}
