//===- wile/Lower.h - AST to IR lowering ------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#ifndef TALFT_WILE_LOWER_H
#define TALFT_WILE_LOWER_H

#include "support/Diagnostics.h"
#include "support/Error.h"
#include "wile/Ast.h"
#include "wile/IR.h"

namespace talft::wile {

/// Lowers an AST to the CFG IR: assigns variable/temp ids, lays out array
/// bases (auto bases start at 4096, above the output cell), flattens
/// expressions to three-address code, and structures loops/conditionals
/// so that every CondZero terminator's fall-through target is laid out
/// immediately after its block.
Expected<IRProgram> lowerToIR(const WileProgram &P, DiagnosticEngine &Diags);

} // namespace talft::wile

#endif // TALFT_WILE_LOWER_H
