//===- wile/Codegen.cpp ---------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "wile/Codegen.h"

#include "support/StringUtils.h"
#include "support/Unreachable.h"
#include "wile/Lower.h"
#include "wile/Optimize.h"
#include "wile/Parser.h"

using namespace talft;
using namespace talft::wile;

namespace {

// Scratch registers (outside the 2*26 value registers).
constexpr unsigned AddrG = 52, AddrB = 53, TgtG = 54, TgtB = 55;
constexpr unsigned MaxValues = 26;

class Backend {
public:
  Backend(TypeContext &Types, const IRProgram &IR, CodegenMode Mode)
      : Types(Types), Es(Types.exprs()), IR(IR), Mode(Mode),
        FT(Mode == CodegenMode::FaultTolerant), Out(Types) {}

  Expected<CompiledProgram> run() {
    if (IR.NumRegs > (int)MaxValues)
      return makeError(formatv("program needs %d simultaneous values; the "
                               "backend supports %u",
                               IR.NumRegs, MaxValues));

    // Data section: array cells and the output cell.
    for (const IRProgram::ArrayInfo &A : IR.Arrays)
      for (int64_t I = 0; I != A.Size; ++I)
        Out.Prog.addData({A.Base + I, Types.intType(), 0, "", SourceLoc()});
    Out.Prog.addData({IR.OutputAddr, Types.intType(), 0, "", SourceLoc()});

    for (size_t BI = 0, BE = IR.Blocks.size(); BI != BE; ++BI)
      emitBlock(IR.Blocks[BI],
                BI + 1 == BE ? nullptr : &IR.Blocks[BI + 1]);
    emitExitBlock();

    Out.Prog.EntryLabel = IR.Blocks.front().Label;
    Out.Prog.ExitLabel = "exit";
    Out.Mode = Mode;
    DiagnosticEngine LayoutDiags;
    if (!Out.Prog.layout(LayoutDiags))
      return makeError("codegen produced an un-layoutable program:\n" +
                       LayoutDiags.str());
    return std::move(Out);
  }

private:
  TypeContext &Types;
  ExprContext &Es;
  const IRProgram &IR;
  CodegenMode Mode;
  bool FT;
  CompiledProgram Out;

  Block *Cur = nullptr;
  MOpStream *Cost = nullptr;
  int NextPairId = 0;

  static Reg greenOf(int V) { return Reg::general(2 * (unsigned)V); }
  static Reg blueOf(int V) { return Reg::general(2 * (unsigned)V + 1); }
  /// The register carrying value V for the given color (the baseline uses
  /// the green copy only).
  Reg valueReg(Color C, int V) const {
    return !FT || C == Color::Green ? greenOf(V) : blueOf(V);
  }

  void emit(Inst I, std::string ImmLabel = std::string()) {
    ProgInst PI;
    PI.I = I;
    PI.ImmLabel = std::move(ImmLabel);
    Cur->Insts.push_back(PI);
  }
  void cost(MOp Op) { Cost->push_back(Op); }

  /// Variable name -> quantified singleton variable in preconditions.
  const talft::Expr *varSingleton(const std::string &Name) {
    return Es.var("v$" + Name, ExprKind::Int);
  }

  /// Builds the precondition for a non-entry block: every variable's two
  /// copies share one universally quantified singleton.
  void annotate(StaticContext &Pre) {
    if (!FT)
      return; // The baseline carries no annotations (it is not typable).
    for (size_t I = 0, E = IR.VarNames.size(); I != E; ++I) {
      const std::string &Name = IR.VarNames[I];
      Pre.Delta.declare("v$" + Name, ExprKind::Int);
      const talft::Expr *X = varSingleton(Name);
      Pre.Gamma.set(greenOf((int)I),
                    RegType(Color::Green, Types.intType(), X));
      Pre.Gamma.set(blueOf((int)I),
                    RegType(Color::Blue, Types.intType(), X));
    }
  }

  void emitBlock(const IRBlock &B, const IRBlock *Next) {
    Cur = &Out.Prog.addBlock(B.Label);
    Cost = &Out.CostStreams[B.Label];
    if (&B != &IR.Blocks.front())
      annotate(*Cur->Pre);
    finalizeBlockPrecondition(Types, *Cur->Pre);

    for (const IROp &Op : B.Ops)
      emitOp(Op);
    emitTerminator(B, Next);
  }

  void emitOp(const IROp &Op) {
    switch (Op.K) {
    case IROp::Kind::Const:
      emit(Inst::mov(greenOf(Op.Dst), Value::green(Op.Imm)));
      cost(MOp::alu(greenOf(Op.Dst).denseIndex()));
      if (FT) {
        emit(Inst::mov(blueOf(Op.Dst), Value::blue(Op.Imm)));
        cost(MOp::alu(blueOf(Op.Dst).denseIndex()));
      }
      return;

    case IROp::Kind::Bin: {
      auto EmitHalf = [&](Color C) {
        Reg D = valueReg(C, Op.Dst), A = valueReg(C, Op.A),
            B2 = valueReg(C, Op.B);
        emit(Inst::alu(Op.Op, D, A, B2));
        if (Op.Op == Opcode::Mul)
          cost(MOp::mul(D.denseIndex(), A.denseIndex(), B2.denseIndex()));
        else
          cost(MOp::alu(D.denseIndex(), A.denseIndex(), B2.denseIndex()));
      };
      EmitHalf(Color::Green);
      if (FT)
        EmitHalf(Color::Blue);
      return;
    }

    case IROp::Kind::Load: {
      auto EmitHalf = [&](Color C) {
        Reg D = valueReg(C, Op.Dst);
        Reg A;
        if (Op.AddrTemp != -1) {
          A = valueReg(C, Op.AddrTemp);
        } else {
          A = C == Color::Green ? Reg::general(AddrG) : Reg::general(AddrB);
          emit(Inst::mov(A, Value(C, Op.Addr)));
          cost(MOp::alu(A.denseIndex()));
        }
        emit(Inst::ld(C, D, A));
        cost(MOp::load(D.denseIndex(), A.denseIndex()));
      };
      EmitHalf(Color::Green);
      if (FT)
        EmitHalf(Color::Blue);
      return;
    }

    case IROp::Kind::Store: {
      int Pair = NextPairId++;
      auto AddrRegFor = [&](Color C) {
        if (Op.AddrTemp != -1)
          return valueReg(C, Op.AddrTemp);
        Reg A = C == Color::Green ? Reg::general(AddrG) : Reg::general(AddrB);
        emit(Inst::mov(A, Value(C, Op.Addr)));
        cost(MOp::alu(A.denseIndex()));
        return A;
      };
      Reg AG = AddrRegFor(Color::Green);
      Reg VG = valueReg(Color::Green, Op.A);
      emit(Inst::st(Color::Green, AG, VG));
      if (!FT) {
        // Degenerate pair through the same registers; one store in cost.
        emit(Inst::st(Color::Blue, AG, VG));
        cost(MOp::store(AG.denseIndex(), VG.denseIndex()));
        return;
      }
      cost(MOp::store(AG.denseIndex(), VG.denseIndex(), Pair,
                      /*GreenHalf=*/true));
      Reg AB = AddrRegFor(Color::Blue);
      Reg VB = valueReg(Color::Blue, Op.A);
      emit(Inst::st(Color::Blue, AB, VB));
      cost(MOp::storeCommit(AB.denseIndex(), VB.denseIndex(), Pair));
      return;
    }
    }
    talft_unreachable("unknown IR op kind");
  }

  /// Emits the paired (or degenerate) unconditional transfer to \p Label.
  /// The baseline's cost stream charges a single direct branch (a plain
  /// ISA embeds the target; only TALFT architecturally requires the
  /// target-materializing movs).
  void emitJumpTo(const std::string &Label) {
    int Pair = NextPairId++;
    Reg TG = Reg::general(TgtG), TB = Reg::general(TgtB);
    emit(Inst::mov(TG, Value::green(0)), Label);
    if (FT) {
      cost(MOp::alu(TG.denseIndex()));
      emit(Inst::mov(TB, Value::blue(0)), Label);
      cost(MOp::alu(TB.denseIndex()));
      emit(Inst::jmp(Color::Green, TG));
      cost(MOp::branch(TG.denseIndex(), -1, Pair, /*GreenHalf=*/true));
      emit(Inst::jmp(Color::Blue, TB));
      cost(MOp::branch(TB.denseIndex(), -1, Pair));
      return;
    }
    emit(Inst::jmp(Color::Green, TG));
    emit(Inst::jmp(Color::Blue, TG));
    cost(MOp::branch());
  }

  void emitTerminator(const IRBlock &B, const IRBlock *Next) {
    switch (B.T) {
    case IRBlock::Term::Jump:
      // Jump-to-next is a fall-through (the FT checker verifies the next
      // block's precondition is entailed). Blocks need at least one
      // instruction, so an otherwise-empty block keeps its jump.
      if (Next && Next->Label == B.Target0 && !Cur->Insts.empty())
        return;
      emitJumpTo(B.Target0);
      return;

    case IRBlock::Term::CondZero: {
      assert(Next && Next->Label == B.Target1 &&
             "CondZero fall-through target must be laid out next");
      int Pair = NextPairId++;
      Reg TG = Reg::general(TgtG), TB = Reg::general(TgtB);
      emit(Inst::mov(TG, Value::green(0)), B.Target0);
      Reg ZG = valueReg(Color::Green, B.CondTemp);
      if (FT) {
        cost(MOp::alu(TG.denseIndex()));
        emit(Inst::mov(TB, Value::blue(0)), B.Target0);
        cost(MOp::alu(TB.denseIndex()));
        Reg ZB = valueReg(Color::Blue, B.CondTemp);
        emit(Inst::bz(Color::Green, ZG, TG));
        cost(MOp::branch(ZG.denseIndex(), TG.denseIndex(), Pair,
                         /*GreenHalf=*/true));
        emit(Inst::bz(Color::Blue, ZB, TB));
        cost(MOp::branch(ZB.denseIndex(), TB.denseIndex(), Pair));
        return;
      }
      // Baseline: one direct conditional branch.
      emit(Inst::bz(Color::Green, ZG, TG));
      emit(Inst::bz(Color::Blue, ZG, TG));
      cost(MOp::branch(ZG.denseIndex()));
      return;
    }

    case IRBlock::Term::Halt:
      emitJumpTo("exit");
      return;
    }
    talft_unreachable("unknown terminator");
  }

  void emitExitBlock() {
    Cur = &Out.Prog.addBlock("exit");
    Cost = &Out.CostStreams["exit"];
    finalizeBlockPrecondition(Types, *Cur->Pre);
    emitJumpTo("exit");
  }
};

} // namespace

Expected<CompiledProgram> talft::wile::generateCode(TypeContext &Types,
                                                    const IRProgram &IR,
                                                    CodegenMode Mode,
                                                    DiagnosticEngine &Diags) {
  (void)Diags;
  return Backend(Types, IR, Mode).run();
}

Expected<CompiledProgram> talft::wile::compileWile(TypeContext &Types,
                                                   std::string_view Source,
                                                   CodegenMode Mode,
                                                   DiagnosticEngine &Diags,
                                                   bool Optimize) {
  Expected<WileProgram> Ast = parseWile(Source, Diags);
  if (!Ast)
    return Ast.takeError();
  Expected<IRProgram> IR = lowerToIR(*Ast, Diags);
  if (!IR)
    return IR.takeError();
  if (Optimize)
    optimizeIR(*IR);
  return generateCode(Types, *IR, Mode, Diags);
}
