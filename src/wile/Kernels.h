//===- wile/Kernels.h - The Figure 10 benchmark kernels --------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates on SPEC CINT2000 and MediaBench with reference
/// inputs; we cannot ship those, so each benchmark is represented by a
/// Wile kernel modelled on its dominant loop (the substitution is
/// documented in DESIGN.md). Kernels marked Typable avoid dynamic
/// addressing, so their fault-tolerant compilation passes the TALFT
/// checker end-to-end; the rest exercise the simulator and cost model
/// exactly as the paper's binaries exercised the Itanium (which had no
/// type checker either).
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_WILE_KERNELS_H
#define TALFT_WILE_KERNELS_H

#include <string>
#include <vector>

namespace talft::wile {

/// One benchmark kernel.
struct Kernel {
  /// Benchmark it stands in for (e.g. "164.gzip").
  std::string Name;
  /// "SPEC CINT2000" or "MediaBench".
  std::string Suite;
  /// What the kernel models.
  std::string Models;
  /// Wile source.
  std::string Source;
  /// True when the fault-tolerant compilation is expected to type-check
  /// (no dynamic addressing).
  bool Typable = false;
};

/// The kernels of the Figure 10 reproduction, in the paper's suite order.
const std::vector<Kernel> &benchmarkKernels();

} // namespace talft::wile

#endif // TALFT_WILE_KERNELS_H
