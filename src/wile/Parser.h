//===- wile/Parser.h - Wile front end --------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for Wile. Grammar:
///
///   program := decl* stmt*
///   decl    := 'var' ident ('=' int)? ';'
///            | 'array' ident '[' int ']' ('@' int)? ';'
///   stmt    := ident '=' expr ';'
///            | ident '[' expr ']' '=' expr ';'
///            | 'output' '(' expr ')' ';'
///            | 'while' '(' cond ')' block
///            | 'if' '(' cond ')' block ('else' block)?
///   block   := '{' stmt* '}'
///   cond    := expr (('==' | '!=') expr)?
///   expr    := term (('+' | '-') term)*
///   term    := factor ('*' factor)*
///   factor  := int | ident ('[' expr ']')? | '(' expr ')' | '-' factor
///
/// Comments run from "//" to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_WILE_PARSER_H
#define TALFT_WILE_PARSER_H

#include "support/Diagnostics.h"
#include "support/Error.h"
#include "wile/Ast.h"

#include <string_view>

namespace talft::wile {

/// Parses Wile source text. Also performs name resolution checks: every
/// used variable/array is declared, names are unique, array bases don't
/// overlap.
Expected<WileProgram> parseWile(std::string_view Source,
                                DiagnosticEngine &Diags);

} // namespace talft::wile

#endif // TALFT_WILE_PARSER_H
