//===- wile/Codegen.h - Backends: unprotected and TALFT ---------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two backends lower the Wile IR to TALFT machine code:
///
///  - Unprotected: the baseline "original VELOCITY compiler" equivalent —
///    one instruction per IR operation, no redundancy. It runs on the
///    TALFT machine by issuing degenerate pairs for stores and transfers
///    (stG;stB through the *same* registers — exactly the pattern the
///    checker rejects), and its cost stream counts one operation per
///    logical op, so the cost model sees a plain single-thread binary.
///
///  - FaultTolerant: the paper's reliability transformation — every
///    computation is duplicated into a green and a blue register copy,
///    stores commit through the stG/stB queue protocol, and every control
///    transfer runs the jmpG/jmpB (bzG/bzB) agreement protocol. Each block
///    carries the typing precondition relating the two copies (one shared
///    universally-quantified singleton per variable), so compiled programs
///    without dynamic addressing pass the TALFT checker.
///
/// Register convention: IR value i lives in r(2i) (green) and r(2i+1)
/// (blue; unused by the baseline). r52..r55 are the address/target scratch
/// pairs. Programs needing more than 26 simultaneous values are rejected.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_WILE_CODEGEN_H
#define TALFT_WILE_CODEGEN_H

#include "perf/MOp.h"
#include "support/Diagnostics.h"
#include "tal/Program.h"
#include "wile/IR.h"

#include <map>

namespace talft::wile {

/// Which backend to run.
enum class CodegenMode : uint8_t { Unprotected, FaultTolerant };

/// A compiled program plus the per-block cost streams for the pipeline
/// model.
struct CompiledProgram {
  Program Prog;
  std::map<std::string, MOpStream> CostStreams;
  CodegenMode Mode = CodegenMode::Unprotected;

  explicit CompiledProgram(TypeContext &Types) : Prog(Types) {}
};

/// Lowers \p IR through the selected backend. The returned program is laid
/// out and runnable; FaultTolerant output additionally carries full typing
/// annotations.
Expected<CompiledProgram> generateCode(TypeContext &Types,
                                       const IRProgram &IR, CodegenMode Mode,
                                       DiagnosticEngine &Diags);

/// Front-to-back convenience: parse + lower + (optionally) optimize +
/// codegen. Optimization runs before the backend, as in the paper's
/// VELOCITY pipeline ("the reliability transformation was compiled into
/// the low level code immediately before register allocation and
/// scheduling").
Expected<CompiledProgram> compileWile(TypeContext &Types,
                                      std::string_view Source,
                                      CodegenMode Mode,
                                      DiagnosticEngine &Diags,
                                      bool Optimize = false);

} // namespace talft::wile

#endif // TALFT_WILE_CODEGEN_H
