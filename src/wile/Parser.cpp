//===- wile/Parser.cpp ----------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "wile/Parser.h"

#include "support/StringUtils.h"

#include <map>
#include <set>

using namespace talft;
using namespace talft::wile;

namespace {

enum class Tok : uint8_t {
  Eof,
  Ident,
  Number,
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semi,
  Assign, // =
  EqEq,   // ==
  NotEq,  // !=
  Plus,
  Minus,
  Star,
  At,
};

struct Token {
  Tok K = Tok::Eof;
  std::string Text;
  int64_t Num = 0;
  SourceLoc Loc;
};

class Lexer {
public:
  Lexer(std::string_view In) : In(In) {}

  bool run(std::vector<Token> &Out, DiagnosticEngine &Diags) {
    while (true) {
      skip();
      SourceLoc Loc(Line, Col);
      if (Pos >= In.size()) {
        Out.push_back({Tok::Eof, "", 0, Loc});
        return true;
      }
      char C = In[Pos];
      if (isalpha((unsigned char)C) || C == '_') {
        size_t S = Pos;
        while (Pos < In.size() &&
               (isalnum((unsigned char)In[Pos]) || In[Pos] == '_'))
          adv();
        Out.push_back({Tok::Ident, std::string(In.substr(S, Pos - S)), 0,
                       Loc});
        continue;
      }
      if (isdigit((unsigned char)C)) {
        size_t S = Pos;
        while (Pos < In.size() && isdigit((unsigned char)In[Pos]))
          adv();
        std::optional<int64_t> N = parseInt64(In.substr(S, Pos - S));
        if (!N) {
          Diags.error(Loc, "integer literal out of range");
          return false;
        }
        Out.push_back({Tok::Number, "", *N, Loc});
        continue;
      }
      Tok K;
      switch (C) {
      case '{':
        K = Tok::LBrace;
        break;
      case '}':
        K = Tok::RBrace;
        break;
      case '(':
        K = Tok::LParen;
        break;
      case ')':
        K = Tok::RParen;
        break;
      case '[':
        K = Tok::LBracket;
        break;
      case ']':
        K = Tok::RBracket;
        break;
      case ';':
        K = Tok::Semi;
        break;
      case '+':
        K = Tok::Plus;
        break;
      case '-':
        K = Tok::Minus;
        break;
      case '*':
        K = Tok::Star;
        break;
      case '@':
        K = Tok::At;
        break;
      case '=':
        adv();
        if (Pos < In.size() && In[Pos] == '=') {
          adv();
          Out.push_back({Tok::EqEq, "", 0, Loc});
        } else {
          Out.push_back({Tok::Assign, "", 0, Loc});
        }
        continue;
      case '!':
        adv();
        if (Pos < In.size() && In[Pos] == '=') {
          adv();
          Out.push_back({Tok::NotEq, "", 0, Loc});
          continue;
        }
        Diags.error(Loc, "expected '=' after '!'");
        return false;
      default:
        Diags.error(Loc, formatv("unexpected character '%c'", C));
        return false;
      }
      adv();
      Out.push_back({K, "", 0, Loc});
    }
  }

private:
  std::string_view In;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;

  void adv() {
    if (In[Pos] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  }

  void skip() {
    while (Pos < In.size()) {
      char C = In[Pos];
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        adv();
        continue;
      }
      if (C == '/' && Pos + 1 < In.size() && In[Pos + 1] == '/') {
        while (Pos < In.size() && In[Pos] != '\n')
          adv();
        continue;
      }
      return;
    }
  }
};

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  Expected<WileProgram> run() {
    // Declarations first.
    while (peek().K == Tok::Ident &&
           (peek().Text == "var" || peek().Text == "array")) {
      if (!parseDecl())
        return fail();
    }
    // Then the statement list.
    while (peek().K != Tok::Eof) {
      std::unique_ptr<Stmt> S = parseStmt();
      if (!S)
        return fail();
      P.Body.push_back(std::move(S));
    }
    if (!resolveNames())
      return fail();
    return std::move(P);
  }

private:
  std::vector<Token> Tokens;
  size_t Pos = 0;
  DiagnosticEngine &Diags;
  WileProgram P;

  const Token &peek(size_t Off = 0) const {
    size_t I = Pos + Off;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &next() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }
  bool consumeIf(Tok K) {
    if (peek().K != K)
      return false;
    next();
    return true;
  }
  bool expect(Tok K, const char *What) {
    if (consumeIf(K))
      return true;
    Diags.error(peek().Loc, std::string("expected ") + What);
    return false;
  }
  Error fail() { return makeError("Wile parse failed:\n" + Diags.str()); }

  std::optional<int64_t> parseSigned() {
    bool Neg = consumeIf(Tok::Minus);
    if (peek().K != Tok::Number) {
      Diags.error(peek().Loc, "expected a number");
      return std::nullopt;
    }
    int64_t N = next().Num;
    return Neg ? -N : N;
  }

  bool parseDecl() {
    Token Kw = next();
    if (peek().K != Tok::Ident) {
      Diags.error(peek().Loc, "expected a name");
      return false;
    }
    Token Name = next();
    if (Kw.Text == "var") {
      VarDecl D;
      D.Name = Name.Text;
      D.Loc = Name.Loc;
      if (consumeIf(Tok::Assign)) {
        std::optional<int64_t> N = parseSigned();
        if (!N)
          return false;
        D.Init = *N;
      }
      P.Vars.push_back(std::move(D));
      return expect(Tok::Semi, "';'");
    }
    ArrayDecl D;
    D.Name = Name.Text;
    D.Loc = Name.Loc;
    if (!expect(Tok::LBracket, "'['"))
      return false;
    std::optional<int64_t> Size = parseSigned();
    if (!Size)
      return false;
    if (*Size <= 0) {
      Diags.error(Name.Loc, "array size must be positive");
      return false;
    }
    D.Size = *Size;
    if (!expect(Tok::RBracket, "']'"))
      return false;
    if (consumeIf(Tok::At)) {
      std::optional<int64_t> Base = parseSigned();
      if (!Base)
        return false;
      D.Base = *Base;
    }
    P.Arrays.push_back(std::move(D));
    return expect(Tok::Semi, "';'");
  }

  std::unique_ptr<Expr> parseFactor() {
    SourceLoc Loc = peek().Loc;
    if (peek().K == Tok::Number) {
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Const;
      E->N = next().Num;
      E->Loc = Loc;
      return E;
    }
    if (consumeIf(Tok::Minus)) {
      // Unary minus lowers to 0 - x.
      std::unique_ptr<Expr> Inner = parseFactor();
      if (!Inner)
        return nullptr;
      auto Zero = std::make_unique<Expr>();
      Zero->K = Expr::Kind::Const;
      Zero->N = 0;
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Bin;
      E->Op = Opcode::Sub;
      E->Lhs = std::move(Zero);
      E->Rhs = std::move(Inner);
      E->Loc = Loc;
      return E;
    }
    if (consumeIf(Tok::LParen)) {
      std::unique_ptr<Expr> E = parseExpr();
      if (!E || !expect(Tok::RParen, "')'"))
        return nullptr;
      return E;
    }
    if (peek().K == Tok::Ident) {
      auto E = std::make_unique<Expr>();
      E->Name = next().Text;
      E->Loc = Loc;
      if (consumeIf(Tok::LBracket)) {
        E->K = Expr::Kind::Index;
        E->Lhs = parseExpr();
        if (!E->Lhs || !expect(Tok::RBracket, "']'"))
          return nullptr;
      } else {
        E->K = Expr::Kind::Var;
      }
      return E;
    }
    Diags.error(Loc, "expected an expression");
    return nullptr;
  }

  std::unique_ptr<Expr> parseTerm() {
    std::unique_ptr<Expr> L = parseFactor();
    if (!L)
      return nullptr;
    while (peek().K == Tok::Star) {
      SourceLoc Loc = next().Loc;
      std::unique_ptr<Expr> R = parseFactor();
      if (!R)
        return nullptr;
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Bin;
      E->Op = Opcode::Mul;
      E->Lhs = std::move(L);
      E->Rhs = std::move(R);
      E->Loc = Loc;
      L = std::move(E);
    }
    return L;
  }

  std::unique_ptr<Expr> parseExpr() {
    std::unique_ptr<Expr> L = parseTerm();
    if (!L)
      return nullptr;
    while (peek().K == Tok::Plus || peek().K == Tok::Minus) {
      Opcode Op = peek().K == Tok::Plus ? Opcode::Add : Opcode::Sub;
      SourceLoc Loc = next().Loc;
      std::unique_ptr<Expr> R = parseTerm();
      if (!R)
        return nullptr;
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Bin;
      E->Op = Op;
      E->Lhs = std::move(L);
      E->Rhs = std::move(R);
      E->Loc = Loc;
      L = std::move(E);
    }
    return L;
  }

  std::unique_ptr<Cond> parseCond() {
    auto C = std::make_unique<Cond>();
    C->Lhs = parseExpr();
    if (!C->Lhs)
      return nullptr;
    if (peek().K == Tok::EqEq || peek().K == Tok::NotEq) {
      C->K = peek().K == Tok::EqEq ? Cond::Kind::Eq : Cond::Kind::Ne;
      next();
      C->Rhs = parseExpr();
      if (!C->Rhs)
        return nullptr;
    }
    return C;
  }

  bool parseBlockInto(std::vector<std::unique_ptr<Stmt>> &Out) {
    if (!expect(Tok::LBrace, "'{'"))
      return false;
    while (!consumeIf(Tok::RBrace)) {
      std::unique_ptr<Stmt> S = parseStmt();
      if (!S)
        return false;
      Out.push_back(std::move(S));
    }
    return true;
  }

  std::unique_ptr<Stmt> parseStmt() {
    SourceLoc Loc = peek().Loc;
    if (peek().K != Tok::Ident) {
      Diags.error(Loc, "expected a statement");
      return nullptr;
    }
    std::string Head = peek().Text;

    if (Head == "while" || Head == "if") {
      next();
      auto S = std::make_unique<Stmt>();
      S->K = Head == "while" ? Stmt::Kind::While : Stmt::Kind::If;
      S->Loc = Loc;
      if (!expect(Tok::LParen, "'('"))
        return nullptr;
      S->C = parseCond();
      if (!S->C || !expect(Tok::RParen, "')'"))
        return nullptr;
      if (!parseBlockInto(S->Body))
        return nullptr;
      if (S->K == Stmt::Kind::If && peek().K == Tok::Ident &&
          peek().Text == "else") {
        next();
        if (!parseBlockInto(S->Else))
          return nullptr;
      }
      return S;
    }

    if (Head == "output") {
      next();
      auto S = std::make_unique<Stmt>();
      S->K = Stmt::Kind::Output;
      S->Loc = Loc;
      if (!expect(Tok::LParen, "'('"))
        return nullptr;
      S->Value = parseExpr();
      if (!S->Value || !expect(Tok::RParen, "')'") ||
          !expect(Tok::Semi, "';'"))
        return nullptr;
      return S;
    }

    // Assignment or indexed store.
    next();
    auto S = std::make_unique<Stmt>();
    S->Name = Head;
    S->Loc = Loc;
    if (consumeIf(Tok::LBracket)) {
      S->K = Stmt::Kind::StoreIndex;
      S->Index = parseExpr();
      if (!S->Index || !expect(Tok::RBracket, "']'"))
        return nullptr;
    } else {
      S->K = Stmt::Kind::Assign;
    }
    if (!expect(Tok::Assign, "'='"))
      return nullptr;
    S->Value = parseExpr();
    if (!S->Value || !expect(Tok::Semi, "';'"))
      return nullptr;
    return S;
  }

  // --- Name resolution ----------------------------------------------------

  bool checkExpr(const Expr &E, const std::set<std::string> &Vars,
                 const std::set<std::string> &Arrays) {
    switch (E.K) {
    case Expr::Kind::Const:
      return true;
    case Expr::Kind::Var:
      if (!Vars.count(E.Name)) {
        Diags.error(E.Loc, "undeclared variable '" + E.Name + "'");
        return false;
      }
      return true;
    case Expr::Kind::Index:
      if (!Arrays.count(E.Name)) {
        Diags.error(E.Loc, "undeclared array '" + E.Name + "'");
        return false;
      }
      return checkExpr(*E.Lhs, Vars, Arrays);
    case Expr::Kind::Bin:
      return checkExpr(*E.Lhs, Vars, Arrays) &&
             checkExpr(*E.Rhs, Vars, Arrays);
    }
    return false;
  }

  bool checkStmts(const std::vector<std::unique_ptr<Stmt>> &Stmts,
                  const std::set<std::string> &Vars,
                  const std::set<std::string> &Arrays) {
    for (const auto &S : Stmts) {
      switch (S->K) {
      case Stmt::Kind::Assign:
        if (!Vars.count(S->Name)) {
          Diags.error(S->Loc, "undeclared variable '" + S->Name + "'");
          return false;
        }
        if (!checkExpr(*S->Value, Vars, Arrays))
          return false;
        break;
      case Stmt::Kind::StoreIndex:
        if (!Arrays.count(S->Name)) {
          Diags.error(S->Loc, "undeclared array '" + S->Name + "'");
          return false;
        }
        if (!checkExpr(*S->Index, Vars, Arrays) ||
            !checkExpr(*S->Value, Vars, Arrays))
          return false;
        break;
      case Stmt::Kind::Output:
        if (!checkExpr(*S->Value, Vars, Arrays))
          return false;
        break;
      case Stmt::Kind::While:
      case Stmt::Kind::If:
        if (!checkExpr(*S->C->Lhs, Vars, Arrays))
          return false;
        if (S->C->Rhs && !checkExpr(*S->C->Rhs, Vars, Arrays))
          return false;
        if (!checkStmts(S->Body, Vars, Arrays) ||
            !checkStmts(S->Else, Vars, Arrays))
          return false;
        break;
      }
    }
    return true;
  }

  bool resolveNames() {
    std::set<std::string> Vars, Arrays;
    for (const VarDecl &V : P.Vars)
      if (!Vars.insert(V.Name).second) {
        Diags.error(V.Loc, "duplicate variable '" + V.Name + "'");
        return false;
      }
    for (const ArrayDecl &A : P.Arrays) {
      if (Vars.count(A.Name) || !Arrays.insert(A.Name).second) {
        Diags.error(A.Loc, "duplicate name '" + A.Name + "'");
        return false;
      }
    }
    return checkStmts(P.Body, Vars, Arrays);
  }
};

} // namespace

Expected<WileProgram> talft::wile::parseWile(std::string_view Source,
                                             DiagnosticEngine &Diags) {
  std::vector<Token> Tokens;
  if (!Lexer(Source).run(Tokens, Diags))
    return makeError("Wile lex failed:\n" + Diags.str());
  return Parser(std::move(Tokens), Diags).run();
}
