//===- wile/Lower.cpp -----------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "wile/Lower.h"

#include "support/StringUtils.h"

#include <map>

using namespace talft;
using namespace talft::wile;

namespace {

/// The fixed memory-mapped output cell.
constexpr int64_t OutputCellAddr = 2048;
/// Auto-assigned array bases start here.
constexpr int64_t AutoArrayBase = 4096;

class Lowerer {
public:
  Lowerer(const WileProgram &P, DiagnosticEngine &Diags)
      : P(P), Diags(Diags) {}

  Expected<IRProgram> run() {
    IR.OutputAddr = OutputCellAddr;

    for (const VarDecl &V : P.Vars) {
      VarIds[V.Name] = (int)IR.VarNames.size();
      IR.VarNames.push_back(V.Name);
    }
    IR.FirstTemp = (int)IR.VarNames.size();
    IR.NumRegs = IR.FirstTemp;

    if (!layoutArrays())
      return makeError("Wile lowering failed:\n" + Diags.str());

    size_t Entry = newBlock("entry");
    // Initialize every variable so non-entry preconditions can assume all
    // variable registers are populated.
    for (const VarDecl &V : P.Vars) {
      IROp Op;
      Op.K = IROp::Kind::Const;
      Op.Dst = VarIds[V.Name];
      Op.Imm = V.Init;
      block(Entry).Ops.push_back(Op);
    }

    size_t Last = Entry;
    if (!lowerStmts(P.Body, Last))
      return makeError("Wile lowering failed:\n" + Diags.str());
    block(Last).T = IRBlock::Term::Halt;
    return std::move(IR);
  }

private:
  const WileProgram &P;
  DiagnosticEngine &Diags;
  IRProgram IR;
  std::map<std::string, int> VarIds;
  std::map<std::string, size_t> ArrayIndex;
  int NextTemp = 0;
  unsigned NextLabel = 0;

  IRBlock &block(size_t I) { return IR.Blocks[I]; }

  size_t newBlock(std::string Label = std::string()) {
    if (Label.empty())
      Label = formatv("b%u", NextLabel++);
    IR.Blocks.emplace_back();
    IR.Blocks.back().Label = std::move(Label);
    return IR.Blocks.size() - 1;
  }

  bool layoutArrays() {
    int64_t NextAuto = AutoArrayBase;
    // Place explicitly-based arrays first, then auto ones after the
    // highest explicit range.
    for (const ArrayDecl &A : P.Arrays)
      if (A.Base != 0)
        NextAuto = std::max(NextAuto, A.Base + A.Size);
    for (const ArrayDecl &A : P.Arrays) {
      int64_t Base = A.Base;
      if (Base == 0) {
        Base = NextAuto;
        NextAuto += A.Size;
      }
      if (Base <= 0) {
        Diags.error(A.Loc, "array base must be positive");
        return false;
      }
      // Overlap checks (including the output cell).
      if (Base <= OutputCellAddr && OutputCellAddr < Base + A.Size) {
        Diags.error(A.Loc, "array '" + A.Name +
                               "' overlaps the output cell");
        return false;
      }
      for (const IRProgram::ArrayInfo &Other : IR.Arrays) {
        if (Base < Other.Base + Other.Size && Other.Base < Base + A.Size) {
          Diags.error(A.Loc, "array '" + A.Name + "' overlaps '" +
                                 Other.Name + "'");
          return false;
        }
      }
      ArrayIndex[A.Name] = IR.Arrays.size();
      IR.Arrays.push_back({A.Name, Base, A.Size});
    }
    return true;
  }

  int freshTemp() {
    int T = NextTemp++;
    IR.NumRegs = std::max(IR.NumRegs, NextTemp);
    return T;
  }

  /// Lowers an expression into \p B, returning the id holding its value.
  std::optional<int> lowerExpr(const Expr &E, size_t B) {
    switch (E.K) {
    case Expr::Kind::Const: {
      int T = freshTemp();
      IROp Op;
      Op.K = IROp::Kind::Const;
      Op.Dst = T;
      Op.Imm = E.N;
      block(B).Ops.push_back(Op);
      return T;
    }
    case Expr::Kind::Var:
      return VarIds.at(E.Name);
    case Expr::Kind::Index: {
      const IRProgram::ArrayInfo &A = IR.Arrays[ArrayIndex.at(E.Name)];
      IROp Op;
      Op.K = IROp::Kind::Load;
      Op.Dst = freshTemp();
      if (E.Lhs->K == Expr::Kind::Const) {
        if (!checkBounds(*E.Lhs, A))
          return std::nullopt;
        Op.Addr = A.Base + E.Lhs->N;
      } else {
        std::optional<int> Idx = lowerExpr(*E.Lhs, B);
        if (!Idx)
          return std::nullopt;
        // address = base + index
        int BaseT = freshTemp();
        IROp BaseOp;
        BaseOp.K = IROp::Kind::Const;
        BaseOp.Dst = BaseT;
        BaseOp.Imm = A.Base;
        block(B).Ops.push_back(BaseOp);
        int AddrT = freshTemp();
        IROp AddOp;
        AddOp.K = IROp::Kind::Bin;
        AddOp.Op = Opcode::Add;
        AddOp.Dst = AddrT;
        AddOp.A = BaseT;
        AddOp.B = *Idx;
        block(B).Ops.push_back(AddOp);
        Op.AddrTemp = AddrT;
      }
      block(B).Ops.push_back(Op);
      return Op.Dst;
    }
    case Expr::Kind::Bin: {
      std::optional<int> L = lowerExpr(*E.Lhs, B);
      std::optional<int> R = lowerExpr(*E.Rhs, B);
      if (!L || !R)
        return std::nullopt;
      IROp Op;
      Op.K = IROp::Kind::Bin;
      Op.Op = E.Op;
      Op.Dst = freshTemp();
      Op.A = *L;
      Op.B = *R;
      block(B).Ops.push_back(Op);
      return Op.Dst;
    }
    }
    return std::nullopt;
  }

  /// Lowers an expression directly into register \p Dst (the assignment
  /// statement's fast path: no extra copy for the root operation).
  bool lowerExprInto(const Expr &E, size_t B, int Dst) {
    switch (E.K) {
    case Expr::Kind::Const: {
      IROp Op;
      Op.K = IROp::Kind::Const;
      Op.Dst = Dst;
      Op.Imm = E.N;
      block(B).Ops.push_back(Op);
      return true;
    }
    case Expr::Kind::Var: {
      int Src = VarIds.at(E.Name);
      if (Src == Dst)
        return true;
      // Register-to-register copies materialize as src + 0.
      int Zero = freshTemp();
      IROp Z;
      Z.K = IROp::Kind::Const;
      Z.Dst = Zero;
      Z.Imm = 0;
      block(B).Ops.push_back(Z);
      IROp Op;
      Op.K = IROp::Kind::Bin;
      Op.Op = Opcode::Add;
      Op.Dst = Dst;
      Op.A = Src;
      Op.B = Zero;
      block(B).Ops.push_back(Op);
      return true;
    }
    case Expr::Kind::Index:
    case Expr::Kind::Bin: {
      // Reuse the generic path, then retarget the final op's destination.
      std::optional<int> V = lowerExpr(E, B);
      if (!V)
        return false;
      assert(!block(B).Ops.empty() && block(B).Ops.back().Dst == *V &&
             "expression root is not the last op");
      block(B).Ops.back().Dst = Dst;
      return true;
    }
    }
    return false;
  }

  bool checkBounds(const Expr &Idx, const IRProgram::ArrayInfo &A) {
    if (Idx.N < 0 || Idx.N >= A.Size) {
      Diags.error(Idx.Loc, formatv("index %lld out of bounds for '%s[%lld]'",
                                   (long long)Idx.N, A.Name.c_str(),
                                   (long long)A.Size));
      return false;
    }
    return true;
  }

  /// Lowers the condition's test value: 0 iff "false" for NonZero, and
  /// 0 iff "lhs == rhs" for Eq/Ne.
  std::optional<int> lowerCondValue(const Cond &C, size_t B) {
    std::optional<int> L = lowerExpr(*C.Lhs, B);
    if (!L)
      return std::nullopt;
    if (C.K == Cond::Kind::NonZero)
      return L;
    std::optional<int> R = lowerExpr(*C.Rhs, B);
    if (!R)
      return std::nullopt;
    IROp Op;
    Op.K = IROp::Kind::Bin;
    Op.Op = Opcode::Sub;
    Op.Dst = freshTemp();
    Op.A = *L;
    Op.B = *R;
    block(B).Ops.push_back(Op);
    return Op.Dst;
  }

  /// True when the condition is satisfied by a ZERO test value (the bz
  /// branch target is the "true" side).
  static bool trueOnZero(const Cond &C) { return C.K == Cond::Kind::Eq; }

  bool lowerStmts(const std::vector<std::unique_ptr<Stmt>> &Stmts,
                  size_t &Cur) {
    for (const auto &S : Stmts) {
      NextTemp = IR.FirstTemp; // Temps never live across statements.
      switch (S->K) {
      case Stmt::Kind::Assign:
        if (!lowerExprInto(*S->Value, Cur, VarIds.at(S->Name)))
          return false;
        break;
      case Stmt::Kind::StoreIndex: {
        const IRProgram::ArrayInfo &A = IR.Arrays[ArrayIndex.at(S->Name)];
        IROp Op;
        Op.K = IROp::Kind::Store;
        if (S->Index->K == Expr::Kind::Const) {
          if (!checkBounds(*S->Index, A))
            return false;
          Op.Addr = A.Base + S->Index->N;
        } else {
          std::optional<int> Idx = lowerExpr(*S->Index, Cur);
          if (!Idx)
            return false;
          int BaseT = freshTemp();
          IROp BaseOp;
          BaseOp.K = IROp::Kind::Const;
          BaseOp.Dst = BaseT;
          BaseOp.Imm = A.Base;
          block(Cur).Ops.push_back(BaseOp);
          int AddrT = freshTemp();
          IROp AddOp;
          AddOp.K = IROp::Kind::Bin;
          AddOp.Op = Opcode::Add;
          AddOp.Dst = AddrT;
          AddOp.A = BaseT;
          AddOp.B = *Idx;
          block(Cur).Ops.push_back(AddOp);
          Op.AddrTemp = AddrT;
        }
        std::optional<int> V = lowerExpr(*S->Value, Cur);
        if (!V)
          return false;
        Op.A = *V;
        block(Cur).Ops.push_back(Op);
        break;
      }
      case Stmt::Kind::Output: {
        std::optional<int> V = lowerExpr(*S->Value, Cur);
        if (!V)
          return false;
        IROp Op;
        Op.K = IROp::Kind::Store;
        Op.Addr = IR.OutputAddr;
        Op.A = *V;
        block(Cur).Ops.push_back(Op);
        break;
      }
      case Stmt::Kind::While: {
        size_t Head = newBlock();
        block(Cur).T = IRBlock::Term::Jump;
        block(Cur).Target0 = block(Head).Label;

        NextTemp = IR.FirstTemp;
        std::optional<int> T = lowerCondValue(*S->C, Head);
        if (!T)
          return false;

        size_t Tramp = SIZE_MAX;
        if (trueOnZero(*S->C))
          Tramp = newBlock();

        size_t BodyFirst = newBlock();
        size_t BodyLast = BodyFirst;
        if (!lowerStmts(S->Body, BodyLast))
          return false;
        block(BodyLast).T = IRBlock::Term::Jump;
        block(BodyLast).Target0 = block(Head).Label;

        size_t After = newBlock();
        block(Head).T = IRBlock::Term::CondZero;
        block(Head).CondTemp = *T;
        if (trueOnZero(*S->C)) {
          // Zero-test true => enter the body; the physical fall-through is
          // a trampoline to the exit.
          block(Head).Target0 = block(BodyFirst).Label;
          block(Head).Target1 = block(Tramp).Label;
          block(Tramp).T = IRBlock::Term::Jump;
          block(Tramp).Target0 = block(After).Label;
        } else {
          block(Head).Target0 = block(After).Label;
          block(Head).Target1 = block(BodyFirst).Label;
        }
        Cur = After;
        break;
      }
      case Stmt::Kind::If: {
        NextTemp = IR.FirstTemp;
        std::optional<int> T = lowerCondValue(*S->C, Cur);
        if (!T)
          return false;
        size_t CondBlock = Cur;

        if (trueOnZero(*S->C)) {
          // bz branches to the then-side; the fall-through handles else.
          size_t FallFirst = newBlock();
          size_t FallLast = FallFirst;
          if (!lowerStmts(S->Else, FallLast))
            return false;
          size_t ThenFirst = newBlock();
          size_t ThenLast = ThenFirst;
          if (!lowerStmts(S->Body, ThenLast))
            return false;
          size_t After = newBlock();
          block(CondBlock).T = IRBlock::Term::CondZero;
          block(CondBlock).CondTemp = *T;
          block(CondBlock).Target0 = block(ThenFirst).Label;
          block(CondBlock).Target1 = block(FallFirst).Label;
          block(FallLast).T = IRBlock::Term::Jump;
          block(FallLast).Target0 = block(After).Label;
          block(ThenLast).T = IRBlock::Term::Jump;
          block(ThenLast).Target0 = block(After).Label;
          Cur = After;
          break;
        }

        // Nonzero-true conditions: bz branches to the else-side.
        size_t ThenFirst = newBlock();
        size_t ThenLast = ThenFirst;
        if (!lowerStmts(S->Body, ThenLast))
          return false;
        size_t ElseFirst = newBlock();
        size_t ElseLast = ElseFirst;
        if (!lowerStmts(S->Else, ElseLast))
          return false;
        size_t After = newBlock();
        block(CondBlock).T = IRBlock::Term::CondZero;
        block(CondBlock).CondTemp = *T;
        block(CondBlock).Target0 = block(ElseFirst).Label;
        block(CondBlock).Target1 = block(ThenFirst).Label;
        block(ThenLast).T = IRBlock::Term::Jump;
        block(ThenLast).Target0 = block(After).Label;
        block(ElseLast).T = IRBlock::Term::Jump;
        block(ElseLast).Target0 = block(After).Label;
        Cur = After;
        break;
      }
      }
    }
    return true;
  }
};

} // namespace

Expected<IRProgram> talft::wile::lowerToIR(const WileProgram &P,
                                           DiagnosticEngine &Diags) {
  return Lowerer(P, Diags).run();
}
